//! An actor-style synchronous runtime for protocols written as per-node state
//! machines.
//!
//! This is the classical "each node runs an instance of the same algorithm"
//! execution model of Section 2.1. Protocols that are naturally expressed as
//! per-round message handlers (the classical baselines, convergecast /
//! broadcast primitives, the Cole–Vishkin matching step of Section 5.4)
//! implement [`NodeProgram`]; the [`SyncRuntime`] drives all `n` instances in
//! lock-step against a metered [`Network`].
//!
//! Addressing is strictly KT0: a program only ever names its own ports, and
//! incoming messages are tagged with the port they arrived on.
//!
//! # Steady-state allocation
//!
//! The runtime owns all of its scratch: one inbox swap buffer, one
//! port-tagged delivery buffer, and one [`Outbox`], each reused for every
//! node in every round. Combined with the network's reusable pending/inbox
//! buffers, a steady-state [`step`](SyncRuntime::step) performs **zero heap
//! allocation** (after buffer capacities have warmed up in the first rounds).
//! Halted nodes with empty inboxes are skipped entirely — they cannot send
//! (their program has terminated) and have nothing to receive, so the round
//! cost is proportional to the *active* part of the network.

use rand::rngs::StdRng;

use crate::error::Error;
use crate::graph::{Graph, NodeId, Port};
use crate::message::Payload;
use crate::metrics::Metrics;
use crate::network::{Delivery, Network, NetworkConfig};

/// The per-round view a node program gets of its environment.
#[derive(Debug)]
pub struct RoundContext<'a> {
    /// This node's identifier (exposed for tracing; protocols that model an
    /// anonymous network should ignore it and rely on randomness instead).
    pub node: NodeId,
    /// This node's degree, i.e. its number of ports.
    pub degree: usize,
    /// The current round number, starting at 0 for the start-up round.
    pub round: u64,
    /// This node's private random stream.
    pub rng: &'a mut StdRng,
    /// The value of the shared coin this round, if the network has one.
    pub shared_coin: Option<f64>,
}

/// Messages queued by a node for delivery at the end of the current round.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(Port, M)>,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queues `msg` to be sent through `port`.
    pub fn send(&mut self, port: Port, msg: M) {
        self.msgs.push((port, msg));
    }

    /// Queues `msg` to every port in `0..degree`.
    pub fn send_all(&mut self, degree: usize, msg: M)
    where
        M: Clone,
    {
        for port in 0..degree {
            self.msgs.push((port, msg.clone()));
        }
    }

    /// Number of queued messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the outbox is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// A per-node state machine driven by the [`SyncRuntime`].
pub trait NodeProgram {
    /// The message type exchanged by this protocol.
    type Msg: Payload;

    /// Called once, before the first round, to let the node send its initial
    /// messages.
    fn on_start(&mut self, ctx: &mut RoundContext<'_>, outbox: &mut Outbox<Self::Msg>);

    /// Called every round with the messages delivered this round (tagged with
    /// the local port they arrived through).
    fn on_round(
        &mut self,
        ctx: &mut RoundContext<'_>,
        incoming: &[(Port, Self::Msg)],
        outbox: &mut Outbox<Self::Msg>,
    );

    /// Whether this node has terminated. The runtime stops when every node
    /// has halted (or the round limit is reached).
    ///
    /// A halted node must stay halted and send nothing; the runtime relies
    /// on this to skip halted nodes whose inboxes are empty.
    fn halted(&self) -> bool;
}

/// Drives `n` instances of a [`NodeProgram`] in synchronous rounds.
#[derive(Debug)]
pub struct SyncRuntime<P: NodeProgram> {
    net: Network<P::Msg>,
    programs: Vec<P>,
    round: u64,
    /// Reusable buffer the per-node inbox is swapped into (capacity rotates
    /// through the network's inbox pool — see [`Network::swap_inbox`]).
    inbox_scratch: Vec<Delivery<P::Msg>>,
    /// Reusable `(arrival port, message)` view handed to programs.
    incoming: Vec<(Port, P::Msg)>,
    /// Reusable outbox handed to programs; drained after each callback.
    outbox: Outbox<P::Msg>,
    /// Reusable drain buffer for flushing the outbox while the network is
    /// borrowed mutably.
    flush_scratch: Vec<(Port, P::Msg)>,
}

impl<P: NodeProgram> SyncRuntime<P> {
    /// Creates a runtime over `graph`, instantiating each node's program with
    /// `init(node, degree)` — the only knowledge a KT0 node starts with.
    #[must_use]
    pub fn new(
        graph: Graph,
        config: NetworkConfig,
        mut init: impl FnMut(NodeId, usize) -> P,
    ) -> Self {
        let programs = (0..graph.node_count())
            .map(|v| init(v, graph.degree(v)))
            .collect();
        let net = Network::new(graph, config);
        SyncRuntime {
            net,
            programs,
            round: 0,
            inbox_scratch: Vec::new(),
            incoming: Vec::new(),
            outbox: Outbox::new(),
            flush_scratch: Vec::new(),
        }
    }

    /// The underlying network (for metric inspection).
    #[must_use]
    pub fn network(&self) -> &Network<P::Msg> {
        &self.net
    }

    /// The per-node programs.
    #[must_use]
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Cumulative metrics so far.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.net.metrics()
    }

    /// Runs until every node halts or `max_rounds` rounds have elapsed.
    /// Returns the number of rounds executed (including the start-up round).
    ///
    /// # Errors
    ///
    /// Propagates network errors (invalid port, oversized message, busy
    /// edge), which indicate a bug in the protocol implementation.
    pub fn run_until_halt(&mut self, max_rounds: u64) -> Result<u64, Error> {
        self.start()?;
        while self.round < max_rounds && !self.all_halted() {
            self.step()?;
        }
        Ok(self.round)
    }

    /// Executes only the start-up callbacks (round 0 sends).
    ///
    /// # Errors
    ///
    /// Propagates network errors from the queued sends.
    pub fn start(&mut self) -> Result<(), Error> {
        debug_assert_eq!(self.round, 0, "start() called twice");
        let shared = self.shared_value();
        for v in 0..self.programs.len() {
            let degree = self.net.graph().degree(v);
            {
                let mut ctx = RoundContext {
                    node: v,
                    degree,
                    round: 0,
                    rng: self.net.rng(v),
                    shared_coin: shared,
                };
                self.programs[v].on_start(&mut ctx, &mut self.outbox);
            }
            self.flush_outbox(v)?;
        }
        self.net.advance_round();
        self.round = 1;
        Ok(())
    }

    /// Executes one full round: delivery, per-node handlers, and sends.
    ///
    /// Steady-state this performs no heap allocation and skips halted nodes
    /// with empty inboxes entirely.
    ///
    /// # Errors
    ///
    /// Propagates network errors from the queued sends.
    pub fn step(&mut self) -> Result<(), Error> {
        let shared = self.shared_value();
        for v in 0..self.programs.len() {
            let inbox_empty = self.net.inbox(v).is_empty();
            // A halted node sends nothing and, with an empty inbox, observes
            // nothing: skip it without touching any buffer.
            if inbox_empty && self.programs[v].halted() {
                continue;
            }
            if inbox_empty {
                // Idle-but-live node: hand it an empty view without touching
                // the swap machinery (this path dominates sparse rounds).
                self.incoming.clear();
            } else {
                // Translate (sender, port, msg) deliveries into (receiving
                // port, msg) pairs: KT0 nodes see ports, not identifiers.
                // The arrival port was already resolved in O(1) at send
                // time.
                self.net.swap_inbox(v, &mut self.inbox_scratch);
                self.incoming.clear();
                self.incoming.extend(
                    self.inbox_scratch
                        .drain(..)
                        .map(|(_, port, msg)| (port, msg)),
                );
            }
            let degree = self.net.graph().degree(v);
            {
                let mut ctx = RoundContext {
                    node: v,
                    degree,
                    round: self.round,
                    rng: self.net.rng(v),
                    shared_coin: shared,
                };
                self.programs[v].on_round(&mut ctx, &self.incoming, &mut self.outbox);
            }
            if !self.outbox.is_empty() {
                self.flush_outbox(v)?;
            }
        }
        self.net.advance_round();
        self.round += 1;
        Ok(())
    }

    /// Whether every node program has halted.
    #[must_use]
    pub fn all_halted(&self) -> bool {
        self.programs.iter().all(NodeProgram::halted)
    }

    /// Consumes the runtime and returns the programs and final metrics.
    #[must_use]
    pub fn into_parts(self) -> (Vec<P>, Metrics) {
        let metrics = self.net.metrics();
        (self.programs, metrics)
    }

    fn shared_value(&mut self) -> Option<f64> {
        self.net.shared_coin_uniform().ok()
    }

    /// Sends everything queued in the shared outbox on behalf of `v`.
    ///
    /// The outbox contents are swapped into a scratch buffer first so the
    /// network can be borrowed mutably while draining; both buffers are
    /// reused across calls.
    fn flush_outbox(&mut self, v: NodeId) -> Result<(), Error> {
        std::mem::swap(&mut self.outbox.msgs, &mut self.flush_scratch);
        for (port, msg) in self.flush_scratch.drain(..) {
            self.net.send_through_port(v, port, msg)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::Flood;
    use crate::topology;

    #[test]
    fn flooding_terminates_in_diameter_rounds() {
        let graph = topology::cycle(10).unwrap();
        let diameter = graph.diameter() as u64;
        let mut runtime = SyncRuntime::new(graph, NetworkConfig::with_seed(3), |v, _| {
            Flood::new(v == 0)
        });
        let rounds = runtime.run_until_halt(100).unwrap();
        assert!(runtime.all_halted());
        assert!(rounds <= diameter + 2);
        // Flooding sends at most 2 messages per edge.
        assert!(runtime.metrics().classical_messages <= 2 * 10);
    }

    #[test]
    fn run_respects_round_limit() {
        // Nobody ever halts (no node starts with the token).
        let graph = topology::path(4).unwrap();
        let mut runtime =
            SyncRuntime::new(graph, NetworkConfig::with_seed(3), |_, _| Flood::new(false));
        let rounds = runtime.run_until_halt(17).unwrap();
        assert_eq!(rounds, 17);
        assert!(!runtime.all_halted());
    }

    #[test]
    fn into_parts_returns_programs_and_metrics() {
        let graph = topology::complete(4).unwrap();
        let mut runtime = SyncRuntime::new(graph, NetworkConfig::with_seed(3), |v, _| {
            Flood::new(v == 0)
        });
        runtime.run_until_halt(10).unwrap();
        let (programs, metrics) = runtime.into_parts();
        assert_eq!(programs.len(), 4);
        assert!(metrics.classical_messages > 0);
        assert!(metrics.rounds > 0);
    }

    #[test]
    fn shared_coin_is_visible_to_programs_when_configured() {
        #[derive(Debug)]
        struct CoinWatcher {
            saw: Option<f64>,
        }
        impl NodeProgram for CoinWatcher {
            type Msg = bool;
            fn on_start(&mut self, ctx: &mut RoundContext<'_>, _outbox: &mut Outbox<bool>) {
                self.saw = ctx.shared_coin;
            }
            fn on_round(
                &mut self,
                _ctx: &mut RoundContext<'_>,
                _incoming: &[(Port, bool)],
                _outbox: &mut Outbox<bool>,
            ) {
            }
            fn halted(&self) -> bool {
                true
            }
        }
        let graph = topology::complete(3).unwrap();
        let mut runtime = SyncRuntime::new(
            graph,
            NetworkConfig::with_seed(3).shared_coin(true),
            |_, _| CoinWatcher { saw: None },
        );
        runtime.run_until_halt(2).unwrap();
        let coins: Vec<_> = runtime.programs().iter().map(|p| p.saw).collect();
        assert!(coins[0].is_some());
        assert_eq!(coins[0], coins[1]);
        assert_eq!(coins[1], coins[2]);
    }

    #[test]
    fn halted_nodes_with_mail_still_observe_it() {
        // A program that counts deliveries even while "halted": the runtime
        // must not skip a halted node whose inbox is non-empty (its neighbour
        // may have sent in the same round it halted).
        #[derive(Debug)]
        struct Sink {
            sent: bool,
            received: usize,
        }
        impl NodeProgram for Sink {
            type Msg = bool;
            fn on_start(&mut self, ctx: &mut RoundContext<'_>, outbox: &mut Outbox<bool>) {
                if !self.sent {
                    outbox.send_all(ctx.degree, true);
                    self.sent = true;
                }
            }
            fn on_round(
                &mut self,
                _ctx: &mut RoundContext<'_>,
                incoming: &[(Port, bool)],
                _outbox: &mut Outbox<bool>,
            ) {
                self.received += incoming.len();
            }
            fn halted(&self) -> bool {
                true
            }
        }
        let graph = topology::complete(3).unwrap();
        let mut runtime = SyncRuntime::new(graph, NetworkConfig::with_seed(1), |_, _| Sink {
            sent: false,
            received: 0,
        });
        runtime.start().unwrap();
        runtime.step().unwrap();
        // Every node broadcast at start-up, so each received 2 messages
        // despite reporting halted() == true throughout.
        for p in runtime.programs() {
            assert_eq!(p.received, 2);
        }
    }
}
