//! Random walks and mixing-time estimation.
//!
//! `QuantumRWLE` (Section 5.2) replaces the neighbourhood exploration of the
//! complete-graph protocol by Θ(τ)-length random walks, where τ is the mixing
//! time of the network. This module provides:
//!
//! * walk stepping, both with a live RNG and with a *pre-committed* choice
//!   sequence (the paper's protocol requires the walk initiator to fix and
//!   propagate its random choices in advance, because part of Grover search
//!   is centralised — see Section 5.2),
//! * spectral-gap estimation of the lazy random walk by power iteration,
//! * mixing-time estimates, both spectral (`O(log n / gap)`) and exact
//!   total-variation for small graphs.

use rand::rngs::StdRng;
use rand::Rng;

use crate::graph::{Graph, NodeId};

/// Performs a single step of the simple random walk from `v` using `rng`.
///
/// # Panics
///
/// Panics if `v` has no neighbours (impossible in a connected graph with
/// `n >= 2`).
#[must_use]
pub fn walk_step(graph: &Graph, v: NodeId, rng: &mut StdRng) -> NodeId {
    graph.neighbor(v, rng.gen_range(0..graph.degree(v)))
}

/// Runs a `length`-step simple random walk from `start`, returning the full
/// trajectory (`length + 1` nodes, starting with `start`).
#[must_use]
pub fn random_walk(graph: &Graph, start: NodeId, length: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(length + 1);
    let mut here = start;
    path.push(here);
    for _ in 0..length {
        here = walk_step(graph, here, rng);
        path.push(here);
    }
    path
}

/// The walk determined by a *pre-committed* sequence of random choices: at a
/// node of degree `d`, choice `c` selects the neighbour at port `c mod d`.
///
/// This is how `QuantumRWLE` delegates its walks: the initiator samples the
/// choice sequence once (so the whole walk is a deterministic function the
/// initiator can re-evaluate in superposition inside Grover search) and the
/// sequence is forwarded along the walk itself, at a cost of `O(τ)` messages
/// carrying `O(log n)` bits each per hop — the τ² blow-up discussed in
/// Section 5.2.
#[must_use]
pub fn walk_from_choices(graph: &Graph, start: NodeId, choices: &[u64]) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(choices.len() + 1);
    let mut here = start;
    path.push(here);
    for &c in choices {
        let degree = graph.degree(here);
        here = graph.neighbor(here, (c % degree as u64) as usize);
        path.push(here);
    }
    path
}

/// Estimates the spectral gap `δ = 1 - λ₂` of the **lazy** random walk
/// `P' = (I + P)/2` on `graph`, by power iteration in the π-weighted inner
/// product (deflating the stationary eigenvector).
///
/// The lazy walk is aperiodic, so `λ₂ ∈ [0, 1)` and the estimate is a valid
/// input for [`spectral_mixing_time`]. `iterations` around 200 is plenty for
/// the graph sizes used in this workspace.
#[must_use]
pub fn spectral_gap(graph: &Graph, iterations: usize) -> f64 {
    let n = graph.node_count();
    if n <= 1 {
        return 1.0;
    }
    let pi = graph.stationary_distribution();
    // Start from a deterministic but unstructured vector (a fixed linear
    // congruential sequence), so the start has overlap with the second
    // eigenvector for every graph; a structured start such as an alternating
    // ±1 vector can be an exact eigenvector of a *different* eigenvalue (it
    // is on even cycles) and would trap the iteration.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    deflate(&mut x, &pi);
    normalize(&mut x, &pi);
    let mut eigenvalue = 0.0;
    // Double-buffered power iteration: `y` is reused every round, so the
    // whole loop performs no allocation after this point.
    let mut y = vec![0.0; n];
    for _ in 0..iterations {
        apply_lazy_walk_into(graph, &x, &mut y);
        deflate(&mut y, &pi);
        eigenvalue = pi_dot(&y, &x, &pi);
        let norm = pi_norm(&y, &pi);
        if norm < 1e-300 {
            // x was (numerically) in the span of π: the chain mixes in one step.
            return 1.0;
        }
        for value in &mut y {
            *value /= norm;
        }
        std::mem::swap(&mut x, &mut y);
    }
    (1.0 - eigenvalue.abs()).clamp(1e-12, 1.0)
}

/// Spectral upper estimate of the ε-mixing time: `τ ≈ ln(n/ε) / δ` for the
/// lazy walk, with `δ` estimated by [`spectral_gap`].
#[must_use]
pub fn spectral_mixing_time(graph: &Graph, epsilon: f64) -> usize {
    let n = graph.node_count().max(2) as f64;
    let gap = spectral_gap(graph, 200);
    ((n / epsilon.max(1e-9)).ln() / gap).ceil().max(1.0) as usize
}

/// Exact total-variation ε-mixing time of the lazy walk, computed by
/// propagating the distribution from every start node (cost `O(n · m · τ)`,
/// intended for small validation graphs only).
///
/// Returns `max_t` if the chain has not mixed within `max_t` steps.
#[must_use]
pub fn total_variation_mixing_time(graph: &Graph, epsilon: f64, max_t: usize) -> usize {
    let n = graph.node_count();
    let pi = graph.stationary_distribution();
    let mut worst = 0;
    // One pair of distribution buffers reused across all n starts.
    let mut dist = vec![0.0; n];
    let mut next = vec![0.0; n];
    for start in 0..n {
        dist.fill(0.0);
        dist[start] = 1.0;
        let mut t = 0;
        while t < max_t {
            let tv: f64 = 0.5
                * dist
                    .iter()
                    .zip(&pi)
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>();
            if tv <= epsilon {
                break;
            }
            apply_lazy_walk_distribution_into(graph, &dist, &mut next);
            std::mem::swap(&mut dist, &mut next);
            t += 1;
        }
        worst = worst.max(t);
    }
    worst
}

/// Applies the lazy walk operator to a function on vertices, writing
/// `(P'f)(v)` into `out` (reused by callers to avoid per-iteration
/// allocation).
fn apply_lazy_walk_into(graph: &Graph, f: &[f64], out: &mut [f64]) {
    for v in 0..graph.node_count() {
        let degree = graph.degree(v);
        let avg: f64 = graph.neighbors(v).map(|u| f[u]).sum::<f64>() / degree as f64;
        out[v] = 0.5 * f[v] + 0.5 * avg;
    }
}

/// Pushes a probability distribution one step through the lazy walk, writing
/// into `out` (reused by callers).
fn apply_lazy_walk_distribution_into(graph: &Graph, dist: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for v in 0..graph.node_count() {
        let mass = dist[v];
        if mass == 0.0 {
            continue;
        }
        out[v] += 0.5 * mass;
        let share = 0.5 * mass / graph.degree(v) as f64;
        for u in graph.neighbors(v) {
            out[u] += share;
        }
    }
}

fn pi_dot(a: &[f64], b: &[f64], pi: &[f64]) -> f64 {
    a.iter().zip(b).zip(pi).map(|((x, y), w)| x * y * w).sum()
}

fn pi_norm(a: &[f64], pi: &[f64]) -> f64 {
    pi_dot(a, a, pi).sqrt()
}

fn deflate(x: &mut [f64], pi: &[f64]) {
    // Remove the component along the constant function (the top eigenvector
    // in the π-weighted inner product): ⟨x, 1⟩_π / ⟨1, 1⟩_π, where
    // ⟨1, 1⟩_π = Σ π(v) = 1.
    let coeff: f64 = x.iter().zip(pi).map(|(v, w)| v * w).sum();
    for value in x.iter_mut() {
        *value -= coeff;
    }
}

fn normalize(x: &mut [f64], pi: &[f64]) {
    let norm = pi_norm(x, pi);
    if norm > 0.0 {
        for value in x.iter_mut() {
            *value /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::SeedableRng;

    #[test]
    fn walk_stays_on_graph() {
        let graph = topology::cycle(12).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let path = random_walk(&graph, 3, 50, &mut rng);
        assert_eq!(path.len(), 51);
        for pair in path.windows(2) {
            assert!(graph.are_adjacent(pair[0], pair[1]));
        }
    }

    #[test]
    fn walk_from_choices_is_deterministic() {
        let graph = topology::hypercube(4).unwrap();
        let choices: Vec<u64> = (0..10).map(|i| i * 7 + 3).collect();
        let a = walk_from_choices(&graph, 0, &choices);
        let b = walk_from_choices(&graph, 0, &choices);
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        for pair in a.windows(2) {
            assert!(graph.are_adjacent(pair[0], pair[1]));
        }
    }

    #[test]
    fn complete_graph_has_large_gap() {
        let graph = topology::complete(32).unwrap();
        let gap = spectral_gap(&graph, 300);
        // Lazy walk on K_n has gap 0.5 + O(1/n).
        assert!(gap > 0.4, "gap = {gap}");
    }

    #[test]
    fn cycle_has_small_gap() {
        let big_cycle = spectral_gap(&topology::cycle(64).unwrap(), 600);
        let small_cycle = spectral_gap(&topology::cycle(8).unwrap(), 600);
        assert!(big_cycle < small_cycle);
        assert!(big_cycle < 0.05, "gap = {big_cycle}");
    }

    #[test]
    fn hypercube_mixes_polylogarithmically() {
        let graph = topology::hypercube(6).unwrap(); // 64 nodes
        let tau = spectral_mixing_time(&graph, 0.25);
        assert!(tau <= 80, "tau = {tau}");
        assert!(tau >= 3);
    }

    #[test]
    fn spectral_and_tv_mixing_agree_in_order() {
        let graph = topology::hypercube(4).unwrap(); // 16 nodes
        let tv = total_variation_mixing_time(&graph, 0.25, 1000);
        let spectral = spectral_mixing_time(&graph, 0.25);
        assert!(tv <= spectral * 4 + 4, "tv = {tv}, spectral = {spectral}");
        assert!(spectral <= tv * 20 + 20, "tv = {tv}, spectral = {spectral}");
    }

    #[test]
    fn barbell_mixes_slowly() {
        let barbell = topology::barbell(8, 1).unwrap();
        let expander =
            topology::random_regular(17, 4, 3).unwrap_or_else(|_| topology::complete(17).unwrap());
        let tau_barbell = total_variation_mixing_time(&barbell, 0.25, 4000);
        let tau_expander = total_variation_mixing_time(&expander, 0.25, 4000);
        assert!(
            tau_barbell > tau_expander * 2,
            "barbell {tau_barbell} vs expander {tau_expander}"
        );
    }
}
