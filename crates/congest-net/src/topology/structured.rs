//! Structured topologies with known mixing behaviour: hypercubes, tori,
//! barbells, and lollipops.
//!
//! Hypercubes are the paper's running example of a small-mixing-time graph
//! (τ = Õ(1), Section 5.2); barbells and lollipops are standard examples of
//! graphs with *large* mixing time, useful for exercising the τ-dependence of
//! `QuantumRWLE`.

use crate::error::Error;
use crate::graph::{Graph, ImplicitFamily};

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
///
/// Implicit backend: the bit-flip adjacency is a closed form, so graph
/// memory is O(1) (the CSR arrays would be O(n · d)).
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `d == 0` or `2^d` overflows `usize`.
pub fn hypercube(d: u32) -> Result<Graph, Error> {
    if d == 0 {
        return Err(Error::InvalidTopology {
            reason: "hypercube dimension must be >= 1".into(),
        });
    }
    if d >= usize::BITS {
        return Err(Error::InvalidTopology {
            reason: format!("hypercube dimension {d} too large"),
        });
    }
    Ok(Graph::from_implicit(ImplicitFamily::Hypercube { dims: d }))
}

/// The `rows × cols` two-dimensional torus (wrap-around grid).
///
/// Implicit backend (O(1) graph memory) when both sides are `>= 3`; a side
/// of exactly 2 collapses its duplicate wrap edge, which breaks the
/// constant-degree closed form, so those degenerate tori stay on CSR.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if either side is `< 2`, or if the
/// torus would degenerate into a multigraph (side of exactly 2 is allowed and
/// handled by collapsing the duplicate wrap edge).
pub fn torus(rows: usize, cols: usize) -> Result<Graph, Error> {
    if rows < 2 || cols < 2 {
        return Err(Error::InvalidTopology {
            reason: format!("torus sides must be >= 2, got {rows}x{cols}"),
        });
    }
    if rows >= 3 && cols >= 3 {
        return Ok(Graph::from_implicit(ImplicitFamily::Torus { rows, cols }));
    }
    let n = rows * cols;
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let here = idx(r, c);
            // For a side of exactly 2 the wrap-around edge from the second
            // cell coincides with the direct edge added from the first; skip
            // exactly that duplicate so the graph stays simple. (This keeps
            // construction linear in the edge count; the previous
            // `Vec::contains` scan per edge was quadratic.)
            if !(cols == 2 && c == 1) {
                edges.push((here, idx(r, (c + 1) % cols)));
            }
            if !(rows == 2 && r == 1) {
                edges.push((here, idx((r + 1) % rows, c)));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// The barbell graph: two cliques of size `clique` joined by a path of
/// `bridge` extra nodes (possibly zero, in which case the cliques share one
/// edge).
///
/// Barbells have mixing time Θ(n³ / m) and are the canonical "slow mixing"
/// stress test for random-walk based protocols.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `clique < 3`.
pub fn barbell(clique: usize, bridge: usize) -> Result<Graph, Error> {
    if clique < 3 {
        return Err(Error::InvalidTopology {
            reason: format!("barbell cliques need >= 3 nodes, got {clique}"),
        });
    }
    let n = 2 * clique + bridge;
    let mut edges = Vec::new();
    // Left clique: 0..clique, right clique: clique + bridge .. n
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push((u, v));
        }
    }
    let right_start = clique + bridge;
    for u in right_start..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    // Bridge path connecting node clique-1 to node right_start.
    let mut prev = clique - 1;
    for b in 0..bridge {
        let node = clique + b;
        edges.push((prev, node));
        prev = node;
    }
    edges.push((prev, right_start));
    Graph::from_edges(n, &edges)
}

/// The lollipop graph: a clique of size `clique` with a path of `tail` nodes
/// attached. Another canonical slow-mixing topology.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `clique < 3` or `tail == 0`.
pub fn lollipop(clique: usize, tail: usize) -> Result<Graph, Error> {
    if clique < 3 {
        return Err(Error::InvalidTopology {
            reason: format!("lollipop clique needs >= 3 nodes, got {clique}"),
        });
    }
    if tail == 0 {
        return Err(Error::InvalidTopology {
            reason: "lollipop tail must have at least one node".into(),
        });
    }
    let n = clique + tail;
    let mut edges = Vec::new();
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push((u, v));
        }
    }
    let mut prev = clique - 1;
    for t in 0..tail {
        let node = clique + t;
        edges.push((prev, node));
        prev = node;
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_properties() {
        let g = hypercube(5).unwrap();
        assert_eq!(g.node_count(), 32);
        assert_eq!(g.edge_count(), 32 * 5 / 2);
        assert_eq!(g.diameter(), 5);
        for v in 0..32 {
            assert_eq!(g.degree(v), 5);
        }
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn torus_properties() {
        let g = torus(4, 5).unwrap();
        assert_eq!(g.node_count(), 20);
        assert!(g.is_connected());
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(torus(1, 5).is_err());
    }

    #[test]
    fn torus_side_two_stays_simple() {
        let g = torus(2, 2).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.node_count(), 4);
        // Each node has exactly 2 distinct neighbours in the 2x2 case.
        for v in 0..4 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn barbell_properties() {
        let g = barbell(5, 3).unwrap();
        assert_eq!(g.node_count(), 13);
        assert!(g.is_connected());
        // Diameter: across two cliques plus the bridge.
        assert!(g.diameter() >= 5);
        assert!(barbell(2, 1).is_err());
    }

    #[test]
    fn barbell_without_bridge() {
        let g = barbell(4, 0).unwrap();
        assert_eq!(g.node_count(), 8);
        assert!(g.is_connected());
    }

    #[test]
    fn lollipop_properties() {
        let g = lollipop(6, 4).unwrap();
        assert_eq!(g.node_count(), 10);
        assert!(g.is_connected());
        assert_eq!(g.degree(9), 1);
        assert!(lollipop(6, 0).is_err());
    }
}
