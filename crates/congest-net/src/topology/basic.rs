//! Elementary topologies: complete graphs, stars, cycles, and paths.

use crate::error::Error;
use crate::graph::Graph;

/// The complete graph `K_n` (diameter 1), the topology of Sections 5.1 and 6.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 2`.
pub fn complete(n: usize) -> Result<Graph, Error> {
    if n < 2 {
        return Err(Error::InvalidTopology {
            reason: format!("complete graph needs n >= 2, got {n}"),
        });
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The star graph with centre `0` and `n - 1` leaves, used in the worked
/// example of Appendix B.2.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, Error> {
    if n < 2 {
        return Err(Error::InvalidTopology {
            reason: format!("star graph needs n >= 2, got {n}"),
        });
    }
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges)
}

/// The cycle `C_n`.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, Error> {
    if n < 3 {
        return Err(Error::InvalidTopology {
            reason: format!("cycle needs n >= 3, got {n}"),
        });
    }
    let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    Graph::from_edges(n, &edges)
}

/// The path `P_n`.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 2`.
pub fn path(n: usize) -> Result<Graph, Error> {
    if n < 2 {
        return Err(Error::InvalidTopology {
            reason: format!("path needs n >= 2, got {n}"),
        });
    }
    let edges: Vec<_> = (0..n - 1).map(|v| (v, v + 1)).collect();
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_properties() {
        let g = complete(10).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 45);
        assert_eq!(g.diameter(), 1);
        for v in 0..10 {
            assert_eq!(g.degree(v), 9);
        }
    }

    #[test]
    fn complete_rejects_tiny() {
        assert!(complete(1).is_err());
        assert!(complete(0).is_err());
    }

    #[test]
    fn star_graph_properties() {
        let g = star(17).unwrap();
        assert_eq!(g.edge_count(), 16);
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(5), 1);
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn cycle_properties() {
        let g = cycle(8).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.diameter(), 4);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn path_properties() {
        let g = path(6).unwrap();
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.diameter(), 5);
        assert!(path(1).is_err());
    }
}
