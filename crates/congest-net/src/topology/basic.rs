//! Elementary topologies: complete graphs, stars, cycles, and paths.

use crate::error::Error;
use crate::graph::{Graph, ImplicitFamily};

/// The complete graph `K_n` (diameter 1), the topology of Sections 5.1 and 6.
///
/// Implicit backend: the adjacency is a closed form, so graph memory is O(1)
/// even at millions of nodes (the CSR arrays would be O(n²)).
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 2`.
pub fn complete(n: usize) -> Result<Graph, Error> {
    if n < 2 {
        return Err(Error::InvalidTopology {
            reason: format!("complete graph needs n >= 2, got {n}"),
        });
    }
    Ok(Graph::from_implicit(ImplicitFamily::Complete { n }))
}

/// The star graph with centre `0` and `n - 1` leaves, used in the worked
/// example of Appendix B.2.
///
/// Implicit backend: O(1) graph memory at any size.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, Error> {
    if n < 2 {
        return Err(Error::InvalidTopology {
            reason: format!("star graph needs n >= 2, got {n}"),
        });
    }
    Ok(Graph::from_implicit(ImplicitFamily::Star { n }))
}

/// The cycle `C_n`.
///
/// Implicit backend: O(1) graph memory at any size.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, Error> {
    if n < 3 {
        return Err(Error::InvalidTopology {
            reason: format!("cycle needs n >= 3, got {n}"),
        });
    }
    Ok(Graph::from_implicit(ImplicitFamily::Cycle { n }))
}

/// The path `P_n`.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 2`.
pub fn path(n: usize) -> Result<Graph, Error> {
    if n < 2 {
        return Err(Error::InvalidTopology {
            reason: format!("path needs n >= 2, got {n}"),
        });
    }
    let edges: Vec<_> = (0..n - 1).map(|v| (v, v + 1)).collect();
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_properties() {
        let g = complete(10).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 45);
        assert_eq!(g.diameter(), 1);
        for v in 0..10 {
            assert_eq!(g.degree(v), 9);
        }
    }

    #[test]
    fn complete_rejects_tiny() {
        assert!(complete(1).is_err());
        assert!(complete(0).is_err());
    }

    #[test]
    fn star_graph_properties() {
        let g = star(17).unwrap();
        assert_eq!(g.edge_count(), 16);
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(5), 1);
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn cycle_properties() {
        let g = cycle(8).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.diameter(), 4);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn path_properties() {
        let g = path(6).unwrap();
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.diameter(), 5);
        assert!(path(1).is_err());
    }
}
