//! Diameter-2 graph families, the topology class of Section 5.3.
//!
//! The difficulty of leader election on diameter-2 graphs (classically Θ(n)
//! messages, CPR20) comes from pairs of nodes whose neighbourhoods intersect
//! in very few — possibly exactly one — common nodes. The generators below
//! produce graphs of diameter exactly 2 that exhibit this "thin handshake"
//! structure, which is what `QuantumQWLE`'s quantum walk is designed to probe.

use crate::error::Error;
use crate::graph::Graph;

/// The "clique of cliques" construction: `k` cliques of `k` nodes each, where
/// member `i` of clique `a` is additionally connected to *every* member of
/// clique `i` (for `i != a`). The result has `n = k²` nodes, `Θ(n^{3/2})`
/// edges, and diameter exactly 2: the common neighbour of `(a, i)` and
/// `(b, j)` is the "ambassador" `(a, b)`, which sits in clique `a` and is
/// adjacent to all of clique `b`.
///
/// This gives a diameter-2 family that is much sparser than the complete
/// graph yet has no dominating hub, complementing
/// [`hub_and_spokes_d2`] and [`shared_hub_pair`].
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `k < 2`.
pub fn clique_of_cliques(k: usize) -> Result<Graph, Error> {
    if k < 2 {
        return Err(Error::InvalidTopology {
            reason: format!("clique-of-cliques needs k >= 2, got {k}"),
        });
    }
    let n = k * k;
    let idx = |clique: usize, member: usize| clique * k + member;
    let mut edges = Vec::new();
    // Intra-clique edges.
    for c in 0..k {
        for a in 0..k {
            for b in (a + 1)..k {
                edges.push((idx(c, a), idx(c, b)));
            }
        }
    }
    // Ambassador edges: member i of clique a <-> every member of clique i.
    for a in 0..k {
        for i in 0..k {
            if i == a {
                continue;
            }
            let ambassador = idx(a, i);
            for member in 0..k {
                let other = idx(i, member);
                edges.push((ambassador.min(other), ambassador.max(other)));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n, &edges)
}

/// A hub-based diameter-2 graph: a single hub adjacent to everyone, plus a
/// sparse cycle among the non-hub nodes so that no node other than the hub
/// dominates the graph.
///
/// Every pair of non-hub nodes has the hub as a (often unique) common
/// neighbour, which is exactly the single-intermediary handshake scenario the
/// paper highlights for diameter-2 networks.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `n < 4`.
pub fn hub_and_spokes_d2(n: usize) -> Result<Graph, Error> {
    if n < 4 {
        return Err(Error::InvalidTopology {
            reason: format!("hub graph needs n >= 4, got {n}"),
        });
    }
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((0, v));
    }
    // Cycle among the spokes keeps minimum degree 3 and avoids a pure star.
    for v in 1..n {
        let next = if v + 1 < n { v + 1 } else { 1 };
        if v != next {
            edges.push((v.min(next), v.max(next)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n, &edges)
}

/// Two "metropolis" cliques of size `half` each, sharing exactly one hub node
/// that belongs to both. Diameter 2, and the hub is the unique common
/// neighbour of every cross-clique pair — the worst case for handshake-style
/// leader election.
///
/// The resulting graph has `2 * half - 1` nodes.
///
/// # Errors
///
/// Returns [`Error::InvalidTopology`] if `half < 3`.
pub fn shared_hub_pair(half: usize) -> Result<Graph, Error> {
    if half < 3 {
        return Err(Error::InvalidTopology {
            reason: format!("shared-hub pair needs half >= 3, got {half}"),
        });
    }
    let n = 2 * half - 1;
    let hub = 0;
    // Left clique: hub plus nodes 1..half; right clique: hub plus nodes half..n.
    let left: Vec<usize> = std::iter::once(hub).chain(1..half).collect();
    let right: Vec<usize> = std::iter::once(hub).chain(half..n).collect();
    let mut edges = Vec::new();
    for group in [&left, &right] {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                edges.push((group[i].min(group[j]), group[i].max(group[j])));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_of_cliques_has_diameter_two() {
        for k in [3, 4, 6] {
            let g = clique_of_cliques(k).unwrap();
            assert_eq!(g.node_count(), k * k);
            assert!(g.is_connected());
            assert_eq!(g.diameter(), 2, "k = {k}");
        }
    }

    #[test]
    fn clique_of_cliques_rejects_tiny() {
        assert!(clique_of_cliques(1).is_err());
    }

    #[test]
    fn hub_graph_has_diameter_two() {
        for n in [8, 33, 64] {
            let g = hub_and_spokes_d2(n).unwrap();
            assert_eq!(g.node_count(), n);
            assert_eq!(g.diameter(), 2);
            assert_eq!(g.degree(0), n - 1);
        }
        assert!(hub_and_spokes_d2(3).is_err());
    }

    #[test]
    fn shared_hub_pair_has_diameter_two_and_thin_cut() {
        let g = shared_hub_pair(6).unwrap();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.diameter(), 2);
        // Cross pair (1, 6): only common neighbour is the hub 0.
        let left_node = 1;
        let right_node = 6;
        assert!(!g.are_adjacent(left_node, right_node));
        let common: Vec<_> = g
            .neighbors(left_node)
            .filter(|&v| g.are_adjacent(v, right_node))
            .collect();
        assert_eq!(common, vec![0]);
        assert!(shared_hub_pair(2).is_err());
    }
}
