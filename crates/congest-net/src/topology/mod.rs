//! Topology generators for the network configurations studied in the paper.
//!
//! The paper analyses three network classes — complete graphs (diameter 1),
//! diameter-2 graphs, and arbitrary graphs (diameter ≥ 3, including graphs
//! parameterised by their mixing time) — plus the star graph used as a worked
//! example in Appendix B.2. This module provides deterministic and seeded
//! random generators for all of them.
//!
//! All generators return connected [`Graph`]s or an [`Error`] explaining why
//! the requested parameters are infeasible.

mod basic;
mod diameter_two;
mod random;
mod structured;

pub use basic::{complete, cycle, path, star};
pub use diameter_two::{clique_of_cliques, hub_and_spokes_d2, shared_hub_pair};
pub use random::{erdos_renyi_connected, random_regular};
pub use structured::{barbell, hypercube, lollipop, torus};

use crate::error::Error;
use crate::graph::Graph;

/// A named topology family, convenient for sweeping experiments over several
/// network classes with one code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Family {
    /// Complete graph `K_n` (diameter 1).
    Complete,
    /// Star graph: one centre plus `n - 1` leaves.
    Star,
    /// Cycle `C_n`.
    Cycle,
    /// Hypercube `Q_d` (requires `n` to be a power of two).
    Hypercube,
    /// Random `d`-regular graph (an expander with high probability).
    RandomRegular {
        /// Degree of every node.
        degree: usize,
    },
    /// Connected Erdős–Rényi graph `G(n, p)`.
    ErdosRenyi {
        /// Edge probability numerator: `p = numer / n` (so `numer` is the
        /// expected average degree).
        expected_degree: usize,
    },
    /// Diameter-2 clique-of-cliques construction.
    CliqueOfCliques,
    /// Diameter-2 hub construction.
    HubAndSpokes,
    /// Two-dimensional torus grid.
    Torus,
    /// Barbell graph: two cliques joined by a path.
    Barbell,
}

impl Family {
    /// Generates a member of this family with `n` nodes (or as close to `n`
    /// as the family's structural constraints allow), using `seed` for the
    /// random families.
    ///
    /// # Errors
    ///
    /// Propagates the underlying generator's [`Error`] for infeasible sizes.
    pub fn generate(self, n: usize, seed: u64) -> Result<Graph, Error> {
        match self {
            Family::Complete => complete(n),
            Family::Star => star(n),
            Family::Cycle => cycle(n),
            Family::Hypercube => {
                let d = (n.max(2) as f64).log2().round() as u32;
                hypercube(d)
            }
            Family::RandomRegular { degree } => random_regular(n, degree, seed),
            Family::ErdosRenyi { expected_degree } => {
                let p = (expected_degree as f64 / n.max(1) as f64).min(1.0);
                erdos_renyi_connected(n, p, seed)
            }
            Family::CliqueOfCliques => {
                let k = (n as f64).sqrt().ceil() as usize;
                clique_of_cliques(k.max(2))
            }
            Family::HubAndSpokes => hub_and_spokes_d2(n),
            Family::Torus => {
                let side = (n as f64).sqrt().round() as usize;
                torus(side.max(2), side.max(2))
            }
            Family::Barbell => barbell(n / 2, n - 2 * (n / 2)),
        }
    }

    /// A short human-readable name, used in experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Complete => "complete",
            Family::Star => "star",
            Family::Cycle => "cycle",
            Family::Hypercube => "hypercube",
            Family::RandomRegular { .. } => "random-regular",
            Family::ErdosRenyi { .. } => "erdos-renyi",
            Family::CliqueOfCliques => "clique-of-cliques",
            Family::HubAndSpokes => "hub-and-spokes",
            Family::Torus => "torus",
            Family::Barbell => "barbell",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate_connected_graphs() {
        let families = [
            Family::Complete,
            Family::Star,
            Family::Cycle,
            Family::Hypercube,
            Family::RandomRegular { degree: 4 },
            Family::ErdosRenyi { expected_degree: 6 },
            Family::CliqueOfCliques,
            Family::HubAndSpokes,
            Family::Torus,
            Family::Barbell,
        ];
        for family in families {
            let g = family
                .generate(32, 11)
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert!(g.is_connected(), "{} disconnected", family.name());
            assert!(g.node_count() >= 16, "{} too small", family.name());
        }
    }

    #[test]
    fn family_names_are_distinct() {
        let names = [
            Family::Complete.name(),
            Family::Star.name(),
            Family::Cycle.name(),
            Family::Hypercube.name(),
            Family::RandomRegular { degree: 3 }.name(),
            Family::ErdosRenyi { expected_degree: 3 }.name(),
            Family::CliqueOfCliques.name(),
            Family::HubAndSpokes.name(),
            Family::Torus.name(),
            Family::Barbell.name(),
        ];
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
