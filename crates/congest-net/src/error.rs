//! Error type for the CONGEST network simulator.

use std::error::Error as StdError;
use std::fmt;

use crate::graph::NodeId;

/// Errors reported by graph construction and network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A topology generator was asked for an invalid size (e.g. zero nodes,
    /// or a hypercube dimension that does not fit the requested size).
    InvalidTopology {
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A node identifier was outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A message was sent between two nodes that are not adjacent.
    NotAdjacent {
        /// The sending node.
        from: NodeId,
        /// The intended recipient.
        to: NodeId,
    },
    /// A port number was outside `0..deg(v)`.
    PortOutOfRange {
        /// The node whose port was addressed.
        node: NodeId,
        /// The offending port.
        port: usize,
        /// The degree of the node.
        degree: usize,
    },
    /// A message exceeded the per-edge CONGEST bit budget for one round.
    MessageTooLarge {
        /// Size of the offending message in bits.
        bits: usize,
        /// The per-message budget in bits.
        budget: usize,
    },
    /// An edge was used twice in the same round in the same direction, which
    /// the CONGEST model forbids (one message per edge per direction).
    EdgeBusy {
        /// The sending node.
        from: NodeId,
        /// The recipient node.
        to: NodeId,
    },
    /// The shared (global) coin was requested but the network was configured
    /// without one.
    SharedCoinUnavailable,
    /// A graph was expected to be connected but is not.
    Disconnected,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            Error::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for network of {n} nodes")
            }
            Error::NotAdjacent { from, to } => {
                write!(f, "nodes {from} and {to} are not adjacent")
            }
            Error::PortOutOfRange { node, port, degree } => {
                write!(
                    f,
                    "port {port} out of range for node {node} of degree {degree}"
                )
            }
            Error::MessageTooLarge { bits, budget } => {
                write!(
                    f,
                    "message of {bits} bits exceeds the CONGEST budget of {budget} bits"
                )
            }
            Error::EdgeBusy { from, to } => {
                write!(f, "edge {from}->{to} already carries a message this round")
            }
            Error::SharedCoinUnavailable => {
                write!(
                    f,
                    "shared coin requested but the network has none configured"
                )
            }
            Error::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::InvalidTopology {
                reason: "zero nodes".into(),
            },
            Error::NodeOutOfRange { node: 9, n: 4 },
            Error::NotAdjacent { from: 0, to: 3 },
            Error::PortOutOfRange {
                node: 1,
                port: 7,
                degree: 3,
            },
            Error::MessageTooLarge {
                bits: 900,
                budget: 64,
            },
            Error::EdgeBusy { from: 2, to: 5 },
            Error::SharedCoinUnavailable,
            Error::Disconnected,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(
                s.chars().next().unwrap().is_lowercase() || s.chars().next().unwrap().is_numeric()
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
