//! # bench-harness
//!
//! The experiment harness that regenerates every complexity claim of
//! *Quantum Communication Advantage for Leader Election and Agreement*
//! (PODC 2025). Each experiment (E1–E10, see DESIGN.md and EXPERIMENTS.md)
//! runs a quantum protocol and its classical comparator over a sweep of
//! network sizes on the metered CONGEST simulator, records the measured
//! message and round complexity, and fits the scaling exponent so the
//! *shape* of each theorem (who wins, with what exponent) can be checked.
//!
//! The `experiments` binary prints every table; the Criterion benches under
//! `benches/` time representative configurations of the same runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod gate;
pub mod legacy;
pub mod legacy_quantum;
pub mod network_bench;
pub mod quantum_bench;
pub mod table;

pub use experiments::{
    e10_candidate_sampling, e1_complete_le, e2_tradeoff, e3_mixing_le, e4_diameter_two_le,
    e5_general_le, e6_agreement, e7_star_search, e8_star_counting, e9_walk_ablation,
};
pub use fit::fit_exponent;
pub use table::ExperimentTable;
