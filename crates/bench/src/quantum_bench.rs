//! State-vector kernel throughput measurement: the SoA kernels of
//! `quantum_sim::statevector` vs the frozen scalar
//! [`legacy_quantum`](crate::legacy_quantum) implementation.
//!
//! Used two ways:
//!
//! * the `quantum_core` criterion bench wraps the same workloads in its
//!   timing harness,
//! * `experiments --bench-quantum` calls [`measure_all`] and writes the
//!   results to `BENCH_quantum.json`, so the performance trajectory of the
//!   quantum validation layer is tracked in-repo exactly like the round
//!   engine's (`BENCH_network.json`).
//!
//! Four kernels are timed per dimension, `dim ∈ {2^10, …, 2^20}`:
//!
//! * `oracle` — two phase-oracle passes (an involution, so the state is
//!   restored exactly and every timed run sees identical input) with a
//!   scrambled, branch-hostile marked set;
//! * `diffusion` — two Grover diffusion passes (near-involutive; the
//!   determinism checksum is rounded to absorb the ~1 ulp drift);
//! * `inner-product` — one complex inner product against a second state;
//! * `sampling` — one cumulative-distribution build plus 1024 cached draws
//!   from a fixed-seed generator.
//!
//! Per-run work is normalised across dimensions by repeating each kernel
//! `max(1, 2^21 / dim)` times, so every record times a comparable number of
//! amplitude operations and the min-of-runs estimator stays meaningful at
//! small `dim`.

use std::time::Instant;

use quantum_sim::{Complex, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::legacy_quantum::LegacyStateVector;

/// The benchmarked Hilbert-space dimensions.
pub const BENCH_DIMS: [usize; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20];

/// Measurement draws per `sampling` repetition.
pub const SAMPLE_DRAWS: usize = 1024;

/// Amplitude operations each record targets per timed run (repetitions are
/// `AMP_OPS_PER_RUN / dim`, floored at 1).
pub const AMP_OPS_PER_RUN: usize = 1 << 21;

fn scramble(x: u64) -> u64 {
    // SplitMix64 finaliser: decorrelates the bench data from the index.
    let z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The benchmark phase oracle: marks a scrambled ~3/8 of the domain, so the
/// frozen conditional-negation loop pays real branch mispredictions while
/// the SoA sign-multiply pass does not care.
#[must_use]
pub fn bench_oracle(x: usize) -> bool {
    scramble(x as u64) & 7 < 3
}

/// Deterministic, non-uniform benchmark amplitudes (identical input for both
/// engines; each constructor normalises).
#[must_use]
pub fn base_amplitudes(dim: usize) -> Vec<Complex> {
    (0..dim)
        .map(|k| {
            let z = scramble(k as u64 ^ 0x5851_F42D_4C95_7F2D);
            Complex::new(
                (z & 0xFFFF) as f64 / 65_536.0 + 0.05,
                ((z >> 16) & 0xFFFF) as f64 / 98_304.0,
            )
        })
        .collect()
}

/// A single timed measurement for the JSON dump.
#[derive(Debug, Clone)]
pub struct QuantumBenchRecord {
    /// Kernel name: `oracle`, `diffusion`, `inner-product`, or `sampling`.
    pub kernel: String,
    /// Engine variant, `soa` or `legacy`.
    pub engine: String,
    /// Hilbert-space dimension.
    pub dim: usize,
    /// Kernel repetitions per timed run.
    pub reps: u32,
    /// Timed runs.
    pub runs: u32,
    /// Minimum wall-clock nanoseconds over the timed runs (the noise-robust
    /// estimator for a deterministic workload — see
    /// `network_bench::BenchRecord::ns_per_run`).
    pub ns_per_run: u128,
}

impl QuantumBenchRecord {
    /// Nanoseconds per kernel repetition.
    #[must_use]
    pub fn ns_per_rep(&self) -> u128 {
        self.ns_per_run / u128::from(self.reps.max(1))
    }
}

/// One warm-up run, then `runs` timed runs; every run must produce the same
/// checksum (the workloads are deterministic by construction) and the
/// minimum time is kept.
fn time_runs(runs: u32, mut f: impl FnMut() -> u64) -> u128 {
    let checksum = f();
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            let out = std::hint::black_box(f());
            assert_eq!(out, checksum, "non-deterministic benchmark run");
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one timed run")
}

/// Checksum helper tolerating the ~ulp drift a near-involutive double pass
/// accumulates across timed runs.
fn rounded(x: f64) -> u64 {
    (x * 1e9).round() as i64 as u64
}

/// Measures the four kernels on both engines across [`BENCH_DIMS`], with
/// `runs` timed repetitions each.
#[must_use]
pub fn measure_all(runs: u32) -> Vec<QuantumBenchRecord> {
    let mut records = Vec::new();
    for &dim in &BENCH_DIMS {
        let reps = (AMP_OPS_PER_RUN / dim).max(1) as u32;
        let amps = base_amplitudes(dim);
        let other_amps: Vec<Complex> = amps.iter().rev().copied().collect();
        let mut push = |kernel: &str, engine: &str, ns: u128| {
            records.push(QuantumBenchRecord {
                kernel: kernel.into(),
                engine: engine.into(),
                dim,
                reps,
                runs,
                ns_per_run: ns,
            });
        };

        // oracle: 2·reps phase-oracle passes (exact involution per pair).
        let mut soa = StateVector::from_amplitudes(amps.clone()).expect("soa state");
        push(
            "oracle",
            "soa",
            time_runs(runs, || {
                for _ in 0..reps {
                    soa.apply_phase_oracle(bench_oracle);
                    soa.apply_phase_oracle(bench_oracle);
                }
                soa.amplitude(dim / 2).re.to_bits()
            }),
        );
        let mut legacy = LegacyStateVector::from_amplitudes(amps.clone());
        push(
            "oracle",
            "legacy",
            time_runs(runs, || {
                for _ in 0..reps {
                    legacy.apply_phase_oracle(bench_oracle);
                    legacy.apply_phase_oracle(bench_oracle);
                }
                legacy.amplitude(dim / 2).re.to_bits()
            }),
        );

        // diffusion: 2·reps diffusion passes (near-involutive per pair).
        let mut soa = StateVector::from_amplitudes(amps.clone()).expect("soa state");
        push(
            "diffusion",
            "soa",
            time_runs(runs, || {
                for _ in 0..reps {
                    soa.apply_diffusion();
                    soa.apply_diffusion();
                }
                rounded(soa.amplitude(dim / 2).re)
            }),
        );
        let mut legacy = LegacyStateVector::from_amplitudes(amps.clone());
        push(
            "diffusion",
            "legacy",
            time_runs(runs, || {
                for _ in 0..reps {
                    legacy.apply_diffusion();
                    legacy.apply_diffusion();
                }
                rounded(legacy.amplitude(dim / 2).re)
            }),
        );

        // inner-product: reps complex dot products (read-only).
        let soa = StateVector::from_amplitudes(amps.clone()).expect("soa state");
        let soa_other = StateVector::from_amplitudes(other_amps.clone()).expect("soa state");
        push(
            "inner-product",
            "soa",
            time_runs(runs, || {
                let mut acc = 0.0;
                for _ in 0..reps {
                    let ip = soa
                        .inner_product(std::hint::black_box(&soa_other))
                        .expect("matching dims");
                    // Consume both components: a re-only checksum lets the
                    // optimiser dead-code-eliminate half the kernel.
                    acc += ip.re + ip.im;
                }
                rounded(acc)
            }),
        );
        let legacy = LegacyStateVector::from_amplitudes(amps.clone());
        let legacy_other = LegacyStateVector::from_amplitudes(other_amps.clone());
        push(
            "inner-product",
            "legacy",
            time_runs(runs, || {
                let mut acc = 0.0;
                for _ in 0..reps {
                    let ip = legacy.inner_product(std::hint::black_box(&legacy_other));
                    acc += ip.re + ip.im;
                }
                rounded(acc)
            }),
        );

        // sampling: reps × (CDF build + SAMPLE_DRAWS cached draws).
        let soa = StateVector::from_amplitudes(amps.clone()).expect("soa state");
        push(
            "sampling",
            "soa",
            time_runs(runs, || {
                let mut acc = 0u64;
                for _ in 0..reps {
                    let mut rng = StdRng::seed_from_u64(42);
                    acc = acc.wrapping_add(
                        soa.sample_many(SAMPLE_DRAWS, &mut rng)
                            .into_iter()
                            .map(|x| x as u64)
                            .sum(),
                    );
                }
                acc
            }),
        );
        let legacy = LegacyStateVector::from_amplitudes(amps);
        push(
            "sampling",
            "legacy",
            time_runs(runs, || {
                let mut acc = 0u64;
                for _ in 0..reps {
                    let mut rng = StdRng::seed_from_u64(42);
                    acc = acc.wrapping_add(
                        legacy
                            .sample_many(SAMPLE_DRAWS, &mut rng)
                            .into_iter()
                            .map(|x| x as u64)
                            .sum(),
                    );
                }
                acc
            }),
        );
    }
    records
}

/// Aggregate SoA-vs-legacy speedup over a record set: total legacy time over
/// total SoA time (both engines run identical per-record workloads, so the
/// ratio is the suite-level wall-clock speedup).
#[must_use]
pub fn aggregate_speedup(records: &[QuantumBenchRecord]) -> Option<f64> {
    let total = |engine: &str| -> u128 {
        records
            .iter()
            .filter(|r| r.engine == engine)
            .map(|r| r.ns_per_run)
            .sum()
    };
    let (soa, legacy) = (total("soa"), total("legacy"));
    (soa > 0).then(|| legacy as f64 / soa as f64)
}

/// Per-kernel SoA-vs-legacy speedup, in first-appearance kernel order.
#[must_use]
pub fn kernel_speedups(records: &[QuantumBenchRecord]) -> Vec<(String, f64)> {
    let mut kernels: Vec<&str> = Vec::new();
    for r in records {
        if !kernels.contains(&r.kernel.as_str()) {
            kernels.push(&r.kernel);
        }
    }
    kernels
        .into_iter()
        .filter_map(|kernel| {
            let total = |engine: &str| -> u128 {
                records
                    .iter()
                    .filter(|r| r.kernel == kernel && r.engine == engine)
                    .map(|r| r.ns_per_run)
                    .sum()
            };
            let (soa, legacy) = (total("soa"), total("legacy"));
            (soa > 0).then(|| (kernel.to_string(), legacy as f64 / soa as f64))
        })
        .collect()
}

/// Renders the records as a JSON document (handwritten: the workspace has no
/// serde; every field is numeric or a plain label, so escaping is not
/// needed).
#[must_use]
pub fn to_json(records: &[QuantumBenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"quantum_core\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"engine\": \"{}\", \"dim\": {}, \"reps\": {}, \
             \"runs\": {}, \"ns_per_run\": {}, \"ns_per_rep\": {}}}{}\n",
            r.kernel,
            r.engine,
            r.dim,
            r.reps,
            r.runs,
            r.ns_per_run,
            r.ns_per_rep(),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The frozen scalar kernels and the SoA kernels must agree amplitude-
    /// for-amplitude on the bench workloads — otherwise the speedup compares
    /// different computations.
    #[test]
    fn engines_agree_on_kernel_outputs() {
        let dim = 1 << 10;
        let amps = base_amplitudes(dim);
        let mut soa = StateVector::from_amplitudes(amps.clone()).unwrap();
        let mut legacy = LegacyStateVector::from_amplitudes(amps.clone());
        soa.apply_phase_oracle(bench_oracle);
        legacy.apply_phase_oracle(bench_oracle);
        soa.apply_diffusion();
        legacy.apply_diffusion();
        for x in 0..dim {
            assert!(
                soa.amplitude(x).approx_eq(legacy.amplitude(x), 1e-12),
                "amplitude {x} diverged"
            );
        }
        let other: Vec<_> = amps.iter().rev().copied().collect();
        let soa_ip = StateVector::from_amplitudes(amps.clone())
            .unwrap()
            .inner_product(&StateVector::from_amplitudes(other.clone()).unwrap())
            .unwrap();
        let legacy_ip = LegacyStateVector::from_amplitudes(amps)
            .inner_product(&LegacyStateVector::from_amplitudes(other));
        assert!(soa_ip.approx_eq(legacy_ip, 1e-12));
    }

    #[test]
    fn engines_agree_on_sample_streams() {
        let dim = 1 << 12;
        let amps = base_amplitudes(dim);
        let soa = StateVector::from_amplitudes(amps.clone()).unwrap();
        let legacy = LegacyStateVector::from_amplitudes(amps);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        assert_eq!(
            soa.sample_many(SAMPLE_DRAWS, &mut rng_a),
            legacy.sample_many(SAMPLE_DRAWS, &mut rng_b)
        );
    }

    #[test]
    fn bench_oracle_marks_an_unbiased_fraction() {
        let marked = (0..4096).filter(|&x| bench_oracle(x)).count();
        // 3/8 of 4096 = 1536; the scramble keeps it close.
        assert!((1400..1700).contains(&marked), "marked = {marked}");
    }

    #[test]
    fn json_and_speedups_are_well_formed() {
        let records = vec![
            QuantumBenchRecord {
                kernel: "oracle".into(),
                engine: "soa".into(),
                dim: 1024,
                reps: 2048,
                runs: 5,
                ns_per_run: 1_000,
            },
            QuantumBenchRecord {
                kernel: "oracle".into(),
                engine: "legacy".into(),
                dim: 1024,
                reps: 2048,
                runs: 5,
                ns_per_run: 3_000,
            },
        ];
        let json = to_json(&records);
        assert!(json.contains("\"benchmark\": \"quantum_core\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!((aggregate_speedup(&records).unwrap() - 3.0).abs() < 1e-12);
        let per_kernel = kernel_speedups(&records);
        assert_eq!(per_kernel.len(), 1);
        assert!((per_kernel[0].1 - 3.0).abs() < 1e-12);
    }
}
