//! Shared scaffolding for the CI speedup gates (`--bench-network` /
//! `--bench-quantum`).
//!
//! Both benchmark entry points follow the same protocol: read an optional
//! `*_MIN_SPEEDUP` environment variable, measure, and — when a gate is set —
//! re-measure a below-threshold reading up to three times, keeping the best
//! attempt. Interference on a shared host only ever *inflates* run times,
//! so a single noisy attempt must not fail the gate, while a true
//! regression fails every attempt. Keeping the retry policy here means the
//! two gates cannot silently diverge.

/// Parses a `*_MIN_SPEEDUP`-style gate threshold from the environment.
///
/// # Panics
///
/// Panics if the variable is set but not a number — a misconfigured CI gate
/// must fail loudly, not silently skip enforcement.
#[must_use]
pub fn speedup_threshold(env_var: &str) -> Option<f64> {
    std::env::var(env_var).ok().map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{env_var} must be a number, got {v:?}"))
    })
}

/// Runs `measure` (which returns a result plus its aggregate speedup) once,
/// or — when `threshold` is set and the reading falls below it — up to
/// three times, keeping the attempt with the best aggregate. Prints a
/// re-measure notice between below-threshold attempts.
///
/// The caller still enforces the threshold on the returned aggregate; this
/// helper only owns the retry policy.
pub fn measure_best_of<T>(
    threshold: Option<f64>,
    mut measure: impl FnMut() -> (T, f64),
) -> (T, f64) {
    let attempts = if threshold.is_some() { 3 } else { 1 };
    let mut best: Option<(T, f64)> = None;
    for attempt in 1..=attempts {
        let (result, aggregate) = measure();
        if best.as_ref().is_none_or(|(_, b)| aggregate > *b) {
            best = Some((result, aggregate));
        }
        let best_aggregate = best.as_ref().map_or(0.0, |(_, b)| *b);
        if threshold.is_none_or(|t| best_aggregate >= t) {
            break;
        }
        if attempt < attempts {
            println!(
                "attempt {attempt}: aggregate {aggregate:.2}x below the gate — re-measuring\n"
            );
        }
    }
    best.expect("at least one measurement attempt")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_threshold_measures_exactly_once() {
        let mut calls = 0;
        let (value, aggregate) = measure_best_of(None, || {
            calls += 1;
            (calls, 0.1)
        });
        assert_eq!((calls, value), (1, 1));
        assert!((aggregate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn passing_threshold_stops_after_first_attempt() {
        let mut calls = 0;
        let (_, aggregate) = measure_best_of(Some(1.0), || {
            calls += 1;
            (calls, 2.0)
        });
        assert_eq!(calls, 1);
        assert!((aggregate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn failing_threshold_retries_and_keeps_the_best() {
        let mut calls = 0;
        let readings = [0.5, 0.9, 0.7];
        let (value, aggregate) = measure_best_of(Some(1.0), || {
            let reading = readings[calls];
            calls += 1;
            (calls, reading)
        });
        // All three attempts ran; the best (second) one was kept.
        assert_eq!(calls, 3);
        assert_eq!(value, 2);
        assert!((aggregate - 0.9).abs() < 1e-12);
    }

    #[test]
    fn threshold_met_mid_retry_stops_early() {
        let mut calls = 0;
        let readings = [0.5, 1.4, 0.7];
        let (_, aggregate) = measure_best_of(Some(1.0), || {
            let reading = readings[calls];
            calls += 1;
            ((), reading)
        });
        assert_eq!(calls, 2);
        assert!((aggregate - 1.4).abs() < 1e-12);
    }

    #[test]
    fn threshold_parses_from_environment() {
        // Unset variables yield no gate (don't mutate the environment here:
        // the suite runs tests concurrently).
        assert_eq!(speedup_threshold("BENCH_GATE_TEST_UNSET_VAR"), None);
    }
}
