//! The workspace's experiment binary: prints the experiment tables (E1–E10),
//! runs the performance benchmarks on request, and drives the scenario
//! engine (declarative workloads, fault injection, deterministic replay).
//!
//! Usage (see also `--help`):
//!
//! ```text
//! cargo run --release -p bench-harness --bin experiments                  # all experiments
//! cargo run --release -p bench-harness --bin experiments -- e1 e7         # a selection
//! cargo run --release -p bench-harness --bin experiments -- --bench-network
//!     # round-engine microbenchmark (CSR vs legacy); writes BENCH_network.json
//! cargo run --release -p bench-harness --bin experiments -- --bench-quantum
//!     # state-vector kernel microbenchmark (SoA vs legacy scalar); writes
//!     # BENCH_quantum.json
//! cargo run --release -p bench-harness --bin experiments -- --scenarios examples/scenarios
//!     # run a scenario matrix; streams results.txt + traces.txt (+ cache-stats.txt) to --out
//! cargo run --release -p bench-harness --bin experiments -- --scenarios examples/scenarios \
//!     --cache-dir farm-cache
//!     # same, through the content-addressed cell cache: a warm rerun re-executes nothing
//! cargo run --release -p bench-harness --bin experiments -- --serve --cache-dir farm-cache
//!     # long-running farm: scenario requests line-by-line on stdin, framed results on stdout
//! cargo run --release -p bench-harness --bin experiments -- --scenarios examples/scenarios \
//!     --replay scenario-out
//!     # re-run the matrix and assert byte-identical metrics + traces
//! cargo run --release -p bench-harness --bin experiments -- --scorecard examples/scenarios
//!     # resilience scorecard: every faulty scenario vs its fault-free twin,
//!     # aggregated per protocol × fault class; writes scorecard.txt to --out
//! cargo run --release -p bench-harness --bin experiments -- --profile examples/scenarios
//!     # run the matrix with the telemetry sidecar on: per-cell wall times,
//!     # phase breakdown, shard utilization, round histograms; writes
//!     # telemetry.jsonl (+ the usual results/traces) to --out
//! ```

use bench_harness::gate;
use bench_harness::network_bench;
use bench_harness::quantum_bench;
use bench_harness::{
    e10_candidate_sampling, e1_complete_le, e2_tradeoff, e3_mixing_le, e4_diameter_two_le,
    e5_general_le, e6_agreement, e7_star_search, e8_star_counting, e9_walk_ablation,
    ExperimentTable,
};

/// Aggregate flood speedup of the sequential CSR engine over the frozen
/// legacy engine (total legacy time over total csr time, all topologies).
fn flood_aggregate(records: &[network_bench::BenchRecord]) -> Option<f64> {
    let total = |engine: &str| -> u128 {
        records
            .iter()
            .filter(|r| r.workload == "flood" && r.engine == engine)
            .map(|r| r.ns_per_run)
            .sum()
    };
    let (csr, legacy) = (total("csr"), total("legacy"));
    (csr > 0).then(|| legacy as f64 / csr as f64)
}

/// Runs the flood/GHS round-engine benchmark and writes `BENCH_network.json`
/// next to the working directory, printing a human-readable summary.
///
/// If `BENCH_NETWORK_MIN_SPEEDUP` is set (e.g. to `3.0` in CI), the process
/// exits non-zero when the aggregate flood speedup of the sequential CSR
/// engine over the frozen legacy engine falls below that threshold, so the
/// round-engine headline is guarded, not just recorded. A below-threshold
/// reading is re-measured (up to three attempts, best kept): scheduler and
/// cache interference on a shared host only ever *inflate* run times, so a
/// single noisy attempt must not fail the gate, while a true regression
/// fails every attempt.
fn run_network_bench() {
    let n = 4096;
    // 9 timed runs per record: with the min-of-runs estimator, more samples
    // tighten the minimum and keep the CI speedup gate stable on noisy
    // (shared/timesliced) hosts.
    let runs = 9;
    let workers = rayon::current_num_threads();
    println!(
        "network_core round-engine benchmark (n = {n}, {runs} timed runs each, \
         {workers} pool worker(s), sharded engine uses {} shards)\n",
        network_bench::bench_shards()
    );
    let threshold = gate::speedup_threshold("BENCH_NETWORK_MIN_SPEEDUP");
    let (mut records, aggregate) = gate::measure_best_of(threshold, || {
        let records = network_bench::measure_all(n, runs);
        let aggregate = flood_aggregate(&records).unwrap_or(0.0);
        (records, aggregate)
    });
    // The large-n tier (implicit structured topologies at 2^20 nodes) runs
    // once, outside the gate's re-measure loop — it feeds no speedup ratio,
    // only absolute throughput records. Skippable for quick local iterations
    // with BENCH_LARGE_N=0; CI always runs it.
    let large_n = std::env::var("BENCH_LARGE_N").map_or(true, |v| v != "0");
    if large_n {
        println!(
            "\nlarge-n tier (n = {}, implicit backends, 2 timed runs each)...",
            network_bench::LARGE_N
        );
        records.extend(network_bench::measure_large(2));
    }
    println!(
        "{:<10} {:<8} {:<16} {:>10} {:>12} {:>14} {:>14}",
        "workload", "engine", "topology", "rounds", "messages", "ns/run", "ns/round"
    );
    for r in &records {
        println!(
            "{:<10} {:<8} {:<16} {:>10} {:>12} {:>14} {:>14}",
            r.workload,
            r.engine,
            r.topology,
            r.rounds,
            r.messages,
            r.ns_per_run,
            r.ns_per_round()
        );
    }
    // Headline: flood speedup per topology, CSR vs legacy.
    println!();
    let labels: Vec<&str> = {
        let mut seen = Vec::new();
        for r in &records {
            if !seen.contains(&r.topology.as_str()) {
                seen.push(r.topology.as_str());
            }
        }
        seen
    };
    let sharded = format!("csr-mt{}", network_bench::bench_shards());
    for label in labels {
        let of = |engine: &str| {
            records
                .iter()
                .find(|r| r.workload == "flood" && r.engine == engine && r.topology == label)
                .map(|r| r.ns_per_run)
        };
        if let (Some(csr), Some(legacy)) = (of("csr"), of("legacy")) {
            println!(
                "flood {label}: {:.2}x speedup (csr vs legacy)",
                legacy as f64 / csr as f64
            );
        }
        if let (Some(csr), Some(mt)) = (of("csr"), of(&sharded)) {
            println!(
                "flood {label}: {:.2}x speedup ({sharded} vs csr)",
                csr as f64 / mt as f64
            );
        }
    }
    let total = |engine: &str| -> u128 {
        records
            .iter()
            .filter(|r| r.workload == "flood" && r.engine == engine)
            .map(|r| r.ns_per_run)
            .sum()
    };
    let (csr_total, sharded_total) = (total("csr"), total(&sharded));
    if csr_total > 0 {
        println!("flood aggregate (all topologies): {aggregate:.2}x speedup (csr vs legacy)");
    }
    if sharded_total > 0 {
        println!(
            "flood aggregate (all topologies): {:.2}x speedup ({sharded} vs csr; needs >= {} cores to scale)",
            csr_total as f64 / sharded_total as f64,
            network_bench::bench_shards()
        );
    }
    let json = network_bench::to_json(&records);
    std::fs::write("BENCH_network.json", &json).expect("write BENCH_network.json");
    println!("\nwrote BENCH_network.json");
    if let Some(threshold) = threshold {
        assert!(
            aggregate >= threshold,
            "aggregate flood speedup regressed: {aggregate:.2}x < required {threshold:.2}x (csr vs legacy)"
        );
        println!("aggregate speedup {aggregate:.2}x meets the required {threshold:.2}x threshold");
    }
}

/// Runs the state-vector kernel benchmark (SoA vs the frozen scalar
/// implementation) and writes `BENCH_quantum.json`, printing a
/// human-readable summary.
///
/// If `BENCH_QUANTUM_MIN_SPEEDUP` is set (e.g. to `1.3` in CI), the process
/// exits non-zero when the aggregate SoA-vs-legacy speedup falls below that
/// threshold, so the autovectorization headline is guarded, not just
/// recorded. Like the network gate, a below-threshold reading is re-measured
/// (up to three attempts, best kept): interference on a shared host only
/// ever *inflates* run times, so a single noisy attempt must not fail the
/// gate, while a true regression fails every attempt.
fn run_quantum_bench() {
    // 7 timed runs per record: the min-of-runs estimator tightens with more
    // samples and keeps the CI gate stable on noisy hosts.
    let runs = 7;
    println!(
        "quantum_core state-vector kernel benchmark (dims 2^10..2^20, {runs} timed runs each, \
         {} draws per sampling rep)\n",
        quantum_bench::SAMPLE_DRAWS
    );
    let threshold = gate::speedup_threshold("BENCH_QUANTUM_MIN_SPEEDUP");
    let (records, aggregate) = gate::measure_best_of(threshold, || {
        let records = quantum_bench::measure_all(runs);
        let aggregate = quantum_bench::aggregate_speedup(&records).unwrap_or(0.0);
        (records, aggregate)
    });
    println!(
        "{:<14} {:<8} {:>9} {:>7} {:>14} {:>12}",
        "kernel", "engine", "dim", "reps", "ns/run", "ns/rep"
    );
    for r in &records {
        println!(
            "{:<14} {:<8} {:>9} {:>7} {:>14} {:>12}",
            r.kernel,
            r.engine,
            r.dim,
            r.reps,
            r.ns_per_run,
            r.ns_per_rep()
        );
    }
    println!();
    for (kernel, speedup) in quantum_bench::kernel_speedups(&records) {
        println!("{kernel}: {speedup:.2}x speedup (soa vs legacy, all dims)");
    }
    println!("aggregate (all kernels, all dims): {aggregate:.2}x speedup (soa vs legacy)");
    let json = quantum_bench::to_json(&records);
    std::fs::write("BENCH_quantum.json", &json).expect("write BENCH_quantum.json");
    println!("\nwrote BENCH_quantum.json");
    if let Some(threshold) = threshold {
        assert!(
            aggregate >= threshold,
            "aggregate state-vector speedup regressed: {aggregate:.2}x < required {threshold:.2}x (soa vs legacy)"
        );
        println!("aggregate speedup {aggregate:.2}x meets the required {threshold:.2}x threshold");
    }
}

/// Resolves the cell-cache directory: the `--cache-dir` flag if given,
/// otherwise the `CONGEST_CACHE` environment knob (empty/unset = no cache).
fn resolve_cache_dir(flag: Option<String>) -> Option<std::path::PathBuf> {
    flag.or_else(|| {
        std::env::var("CONGEST_CACHE")
            .ok()
            .filter(|v| !v.is_empty())
    })
    .map(std::path::PathBuf::from)
}

/// A [`sim_harness::FarmSink`] that streams each completed cell's results
/// row and trace block straight to the output files (and the row to
/// stdout), so a thousand-spec sweep never buffers the whole run — the
/// files come out byte-identical to the old buffered writer.
struct StreamSink {
    results: std::io::BufWriter<std::fs::File>,
    traces: std::io::BufWriter<std::fs::File>,
}

impl StreamSink {
    fn open(out: &std::path::Path) -> Result<Self, String> {
        let file = |name: &str| {
            std::fs::File::create(out.join(name))
                .map(std::io::BufWriter::new)
                .map_err(|e| format!("write {name}: {e}"))
        };
        Ok(StreamSink {
            results: file("results.txt")?,
            traces: file("traces.txt")?,
        })
    }

    fn finish(self) -> Result<(), String> {
        use std::io::Write;
        let flush = |mut w: std::io::BufWriter<std::fs::File>, name: &str| {
            w.flush().map_err(|e| format!("write {name}: {e}"))
        };
        flush(self.results, "results.txt")?;
        flush(self.traces, "traces.txt")
    }
}

impl sim_harness::FarmSink for StreamSink {
    fn on_start(&mut self, _total: usize) -> Result<(), String> {
        use std::io::Write;
        let header = sim_harness::results_table_header();
        print!("{header}");
        self.results
            .write_all(header.as_bytes())
            .map_err(|e| format!("write results.txt: {e}"))?;
        self.traces
            .write_all(sim_harness::trace::HEADER.as_bytes())
            .map_err(|e| format!("write traces.txt: {e}"))
    }

    fn on_cell(
        &mut self,
        _index: usize,
        result: sim_harness::CellResult,
        _from_cache: bool,
    ) -> Result<(), String> {
        use std::io::Write;
        let row = sim_harness::results_table_row(&result);
        print!("{row}");
        self.results
            .write_all(row.as_bytes())
            .map_err(|e| format!("write results.txt: {e}"))?;
        self.traces
            .write_all(sim_harness::trace::serialize_cell(&result).as_bytes())
            .map_err(|e| format!("write traces.txt: {e}"))
    }
}

/// Runs the scenario engine: `--scenarios <spec|dir> [--out <dir>]
/// [--cache-dir <dir>] [--replay <dir>]`. Normal mode streams the results
/// table and the trace file into the output directory cell by cell (plus
/// `cache-stats.txt` with the farm's hit/miss bookkeeping); replay mode
/// re-runs the matrix and exits non-zero unless metrics and traces are
/// byte-identical to the recorded baseline.
fn run_scenarios(rest: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut out_dir = "scenario-out".to_string();
    let mut replay_dir: Option<String> = None;
    let mut cache_flag: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = it.next().ok_or("--out needs a directory")?.clone();
            }
            "--replay" => {
                replay_dir = Some(it.next().ok_or("--replay needs a directory")?.clone());
            }
            "--cache-dir" => {
                cache_flag = Some(it.next().ok_or("--cache-dir needs a directory")?.clone());
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other),
            other => return Err(format!("unexpected scenario argument \"{other}\"")),
        }
    }
    let path = path.ok_or("--scenarios needs a spec file or directory")?;
    let specs = sim_harness::load_specs(path)?;
    let cells = sim_harness::expand(&specs);
    println!(
        "scenario matrix: {} scenario(s), {} cell(s), {} pool worker(s)\n",
        specs.len(),
        cells.len(),
        rayon::current_num_threads()
    );
    let start = std::time::Instant::now();
    if let Some(replay_dir) = replay_dir {
        // Replay must genuinely re-execute — serving cached results would
        // verify the cache against itself, not the engine's determinism.
        if cache_flag.is_some() {
            return Err("--cache-dir cannot be combined with --replay (replay re-executes)".into());
        }
        let results = sim_harness::run_cells(&cells)?;
        println!("{}", sim_harness::results_table(&results));
        println!("[matrix completed in {:.1?}]", start.elapsed());
        let baseline_path = std::path::Path::new(&replay_dir).join("traces.txt");
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        let baseline = sim_harness::trace::parse(&baseline_text)?;
        let mismatches = sim_harness::trace::compare(&results, &baseline);
        if !mismatches.is_empty() {
            for m in &mismatches {
                eprintln!("replay mismatch: {m}");
            }
            return Err(format!(
                "replay FAILED: {} mismatch(es) against {}",
                mismatches.len(),
                baseline_path.display()
            ));
        }
        println!(
            "replay OK: {} cell(s) byte-identical to {}",
            results.len(),
            baseline_path.display()
        );
    } else {
        let out = std::path::Path::new(&out_dir);
        std::fs::create_dir_all(out).map_err(|e| format!("{}: {e}", out.display()))?;
        let farm_opts = sim_harness::FarmOptions {
            telemetry: sim_harness::telemetry_env_enabled(),
            cache_dir: resolve_cache_dir(cache_flag),
        };
        let mut sink = StreamSink::open(out)?;
        let report = sim_harness::run_farm(&cells, &farm_opts, &mut sink)?;
        sink.finish()?;
        println!("\n[matrix completed in {:.1?}]", start.elapsed());
        std::fs::write(out.join("cache-stats.txt"), report.stats_text())
            .map_err(|e| format!("write cache-stats.txt: {e}"))?;
        if farm_opts.cache_dir.is_some() {
            println!(
                "cache: {} hit(s), {} miss(es), {} store(s), {} rejected (hit rate {:.1}%)",
                report.hits,
                report.misses,
                report.stores,
                report.rejected.len(),
                report.hit_rate()
            );
            for diag in &report.rejected {
                eprintln!("cache: {diag}");
            }
        }
        println!(
            "wrote {out_dir}/results.txt, {out_dir}/traces.txt, and {out_dir}/cache-stats.txt"
        );
    }
    Ok(())
}

/// Runs the farm's request loop: `--serve [--cache-dir <dir>]`. Reads
/// scenario requests line-by-line from stdin and streams result blocks to
/// stdout under request-id framing (protocol: `docs/SCENARIO_FORMAT.md`).
fn run_serve(rest: &[String]) -> Result<(), String> {
    let mut cache_flag: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                cache_flag = Some(it.next().ok_or("--cache-dir needs a directory")?.clone());
            }
            other => return Err(format!("unexpected serve argument \"{other}\"")),
        }
    }
    let opts = sim_harness::ServeOptions {
        cache_dir: resolve_cache_dir(cache_flag),
        telemetry: sim_harness::telemetry_env_enabled(),
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let summary = sim_harness::serve(stdin.lock(), &mut stdout, &opts)?;
    eprintln!(
        "serve session: {} request(s), {} cell(s), {} hit(s), {} miss(es)",
        summary.requests, summary.cells, summary.hits, summary.misses
    );
    Ok(())
}

/// Formats a nanosecond reading for the human profile summary (µs below
/// 1 ms, ms below 1 s, seconds above).
fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Runs the profiling mode: `--profile <spec|dir> [--out <dir>]`. The whole
/// matrix runs with the telemetry sidecar enabled (`docs/OBSERVABILITY.md`);
/// stdout gets the results table with the wall(ms) column plus a per-cell
/// summary (round wall-time percentiles, phase breakdown, shard imbalance),
/// and the output directory gets `results.txt` and `traces.txt` (both fully
/// deterministic, as in `--scenarios`), `telemetry.jsonl` (one full report
/// per cell, wall fields segregated under `"wall"`), and
/// `telemetry-deterministic.txt` (the shard-invariant projection of the
/// same reports — what CI diffs byte-for-byte across `CONGEST_SHARDS`).
fn run_profile(rest: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut out_dir = "profile-out".to_string();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = it.next().ok_or("--out needs a directory")?.clone();
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other),
            other => return Err(format!("unexpected profile argument \"{other}\"")),
        }
    }
    let path = path.ok_or("--profile needs a spec file or directory")?;
    let specs = sim_harness::load_specs(path)?;
    let cells = sim_harness::expand(&specs);
    println!(
        "profiling matrix: {} scenario(s), {} cell(s), {} pool worker(s), telemetry on\n",
        specs.len(),
        cells.len(),
        rayon::current_num_threads()
    );
    let start = std::time::Instant::now();
    let results = sim_harness::run_cells_with(&cells, true)?;
    println!("{}", sim_harness::results_table_with_wall(&results));
    for r in &results {
        let Some(report) = &r.outcome.telemetry else {
            continue;
        };
        let (p50, p95, max) = report.round_wall_percentiles();
        let det = &report.deterministic;
        let wall = &report.wall;
        println!("profile: {}", r.cell.id());
        println!(
            "  {} round(s), {} message(s); round wall p50 {} p95 {} max {}",
            det.rounds,
            det.messages,
            fmt_nanos(p50),
            fmt_nanos(p95),
            fmt_nanos(max)
        );
        let phase_total: u64 = wall.phase_nanos.iter().sum();
        if phase_total > 0 {
            print!("  phases:");
            for phase in congest_net::Phase::ALL {
                let nanos = wall.phase_nanos[phase.index()];
                print!(
                    " {} {:.1}%",
                    phase.name(),
                    nanos as f64 * 100.0 / phase_total as f64
                );
            }
            println!();
        }
        if wall.shard_count > 1 {
            println!(
                "  shards: {}, imbalance {:.2}x, adaptive-sequential rounds {}",
                wall.shard_count,
                report.shard_imbalance(),
                wall.adaptive_sequential_rounds
            );
        }
        if matches!(r.cell.mode, congest_net::ExecMode::Event(_)) {
            println!(
                "  event heap depth buckets {} skew buckets {}",
                det.heap_depth.to_json(),
                det.skew_per_round.to_json()
            );
        }
    }
    println!("[profile completed in {:.1?}]", start.elapsed());
    let out = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(out).map_err(|e| format!("{}: {e}", out.display()))?;
    std::fs::write(
        out.join("results.txt"),
        sim_harness::results_table(&results),
    )
    .map_err(|e| format!("write results.txt: {e}"))?;
    std::fs::write(
        out.join("traces.txt"),
        sim_harness::trace::serialize(&results),
    )
    .map_err(|e| format!("write traces.txt: {e}"))?;
    let mut jsonl = String::new();
    let mut deterministic = String::new();
    for r in &results {
        if let Some(report) = &r.outcome.telemetry {
            let id = r.cell.id();
            jsonl.push_str(&report.to_jsonl(&id));
            jsonl.push('\n');
            deterministic.push_str(&report.deterministic_jsonl(&id));
            deterministic.push('\n');
        }
    }
    std::fs::write(out.join("telemetry.jsonl"), jsonl)
        .map_err(|e| format!("write telemetry.jsonl: {e}"))?;
    std::fs::write(out.join("telemetry-deterministic.txt"), deterministic)
        .map_err(|e| format!("write telemetry-deterministic.txt: {e}"))?;
    println!(
        "wrote {out_dir}/results.txt, {out_dir}/traces.txt, {out_dir}/telemetry.jsonl, \
         and {out_dir}/telemetry-deterministic.txt"
    );
    Ok(())
}

/// Runs the resilience scorecard: `--scorecard <spec|dir> [--out <dir>]`.
/// Every scenario with a fault plan runs as written and as its fault-free
/// twin; the per `(protocol, fault class)` aggregation (success rate,
/// message/round overhead vs fault-free) is printed and written — with both
/// underlying results tables — into the output directory.
fn run_scorecard(rest: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut out_dir = "scorecard-out".to_string();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = it.next().ok_or("--out needs a directory")?.clone();
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other),
            other => return Err(format!("unexpected scorecard argument \"{other}\"")),
        }
    }
    let path = path.ok_or("--scorecard needs a spec file or directory")?;
    let specs = sim_harness::load_specs(path)?;
    let faulty = specs.iter().filter(|s| !s.faults.is_empty()).count();
    println!(
        "resilience scorecard: {} scenario(s) loaded, {} with fault plans \
         (each runs against its fault-free twin), {} pool worker(s)\n",
        specs.len(),
        faulty,
        rayon::current_num_threads()
    );
    let start = std::time::Instant::now();
    let card = sim_harness::run_scorecard(&specs)?;
    let table = card.table();
    println!("{table}");
    println!("[scorecard completed in {:.1?}]", start.elapsed());
    let out = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(out).map_err(|e| format!("{}: {e}", out.display()))?;
    std::fs::write(out.join("scorecard.txt"), &table)
        .map_err(|e| format!("write scorecard.txt: {e}"))?;
    std::fs::write(
        out.join("results.txt"),
        sim_harness::results_table(&card.faulty),
    )
    .map_err(|e| format!("write results.txt: {e}"))?;
    std::fs::write(
        out.join("baseline.txt"),
        sim_harness::results_table(&card.baseline),
    )
    .map_err(|e| format!("write baseline.txt: {e}"))?;
    println!("wrote {out_dir}/scorecard.txt, {out_dir}/results.txt, and {out_dir}/baseline.txt");
    Ok(())
}

/// Exit code for a scenario/scorecard error: spec-authoring errors that the
/// registry can explain (an unknown protocol, with the registered names
/// listed) exit 2 like other usage errors; everything else exits 1.
fn scenario_exit_code(message: &str) -> i32 {
    if message.contains("unknown protocol") {
        2
    } else {
        1
    }
}

/// Runs the selected experiment tables (all of them for an empty selection).
fn run_experiments(requested: &[String]) {
    let run_all = requested.is_empty();
    type Experiment = fn() -> ExperimentTable;
    let experiments: Vec<(&str, Experiment)> = vec![
        ("e1", e1_complete_le as Experiment),
        ("e2", e2_tradeoff),
        ("e3", e3_mixing_le),
        ("e4", e4_diameter_two_le),
        ("e5", e5_general_le),
        ("e6", e6_agreement),
        ("e7", e7_star_search),
        ("e8", e8_star_counting),
        ("e9", e9_walk_ablation),
        ("e10", e10_candidate_sampling),
    ];
    println!(
        "Quantum Communication Advantage for Leader Election and Agreement — experiment suite"
    );
    println!("(message counts are measured on the CONGEST simulator; see EXPERIMENTS.md)\n");
    for (name, experiment) in experiments {
        if run_all || requested.iter().any(|r| r == name) {
            let start = std::time::Instant::now();
            let table = experiment();
            println!("{table}");
            println!("  [{name} completed in {:.1?}]\n", start.elapsed());
        }
    }
}

fn print_help() {
    println!(
        "experiments — tables, benchmarks, and scenarios for the PODC 2025 reproduction

USAGE:
    experiments [e1 ... e10]                 print experiment tables (all by default)
    experiments --bench-network              round-engine microbenchmark -> BENCH_network.json
                                             (gated by BENCH_NETWORK_MIN_SPEEDUP if set)
    experiments --bench-quantum              state-vector kernel microbenchmark -> BENCH_quantum.json
                                             (gated by BENCH_QUANTUM_MIN_SPEEDUP if set)
    experiments --scenarios <spec|dir>       run a scenario matrix (*.scn specs; a directory
                                             sweeps every spec through one work-stealing queue)
        [--out <dir>]                        output directory for results.txt, traces.txt, and
                                             cache-stats.txt, streamed cell by cell
                                             (default: scenario-out)
        [--cache-dir <dir>]                  content-addressed cell cache: hits return stored
                                             results without re-running; misses execute and
                                             persist (key: spec stanza + code fingerprint; see
                                             docs/SCENARIO_FORMAT.md)
        [--replay <dir>]                     re-run and assert byte-identical metrics + traces
                                             against <dir>/traces.txt instead of writing output
                                             (not combinable with --cache-dir)
    experiments --serve                      read scenario requests line-by-line from stdin and
                                             stream result blocks to stdout under request-id
                                             framing (protocol: docs/SCENARIO_FORMAT.md)
        [--cache-dir <dir>]                  share a cell cache across all requests
    experiments --scorecard <spec|dir>       resilience scorecard: run every faulty scenario
                                             against its fault-free twin and aggregate success
                                             rate + message/round overhead per protocol x
                                             fault class
        [--out <dir>]                        output directory for scorecard.txt, results.txt,
                                             and baseline.txt (default: scorecard-out)
    experiments --profile <spec|dir>         run a scenario matrix with the telemetry sidecar
                                             on: per-cell wall times, phase breakdown, shard
                                             utilization, and round histograms (see
                                             docs/OBSERVABILITY.md)
        [--out <dir>]                        output directory for results.txt, traces.txt,
                                             telemetry.jsonl, and telemetry-deterministic.txt
                                             (default: profile-out)
    experiments --help                       this text

ENVIRONMENT:
    CONGEST_SHARDS=<k>               worker shards for auto-configured networks
                                     (default 1 = sequential; metrics and traces
                                     are byte-identical for every k)
    RAYON_NUM_THREADS=<t>            thread-pool size for sweeps, scenario cells,
                                     and sharded rounds (default: available cores)
    CONGEST_TELEMETRY=1              turn the telemetry sidecar on for --scenarios
                                     and --scorecard cells too (--profile always
                                     enables it; any other value = off; never
                                     changes metrics, traces, or replay; bypasses
                                     the cell cache, which stores no wall data)
    CONGEST_CACHE=<dir>              default cell-cache directory for --scenarios
                                     and --serve when --cache-dir is not given
                                     (empty/unset = no caching)
    BENCH_SHARDS=<k>                 shard count for the csr-mt bench records
                                     (default 4; --bench-network only)
    BENCH_LARGE_N=0                  skip the million-node implicit tier
                                     (--bench-network only; CI always runs it)
    BENCH_NETWORK_MIN_SPEEDUP=<x>    fail --bench-network if the aggregate
                                     csr-vs-legacy flood speedup drops below x
                                     (CI sets 3.0; unset = record only)
    BENCH_QUANTUM_MIN_SPEEDUP=<x>    fail --bench-quantum if the aggregate
                                     soa-vs-legacy speedup drops below x
                                     (CI sets 1.3; unset = record only)

Scenario cells honour CONGEST_SHARDS; traces recorded at one shard count replay
byte-identically at any other (the deterministic barrier-merge invariant).
Specs may mix round-mode and event-mode scenarios in one matrix: `mode =
\"event\"` plus a `scheduler = [name, bound, seed]` stanza runs its cells on
the discrete-event engine under that scheduler adversary (see
docs/EXECUTION_MODELS.md); replay covers both modes."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // One dispatch point for every subcommand, so new entry points stop
    // accreting ad-hoc flag scans.
    match args.first().map(String::as_str) {
        Some("--help" | "-h") => print_help(),
        Some("--bench-network") => run_network_bench(),
        Some("--bench-quantum") => run_quantum_bench(),
        Some("--scenarios") => {
            if let Err(message) = run_scenarios(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(scenario_exit_code(&message));
            }
        }
        Some("--scorecard") => {
            if let Err(message) = run_scorecard(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(scenario_exit_code(&message));
            }
        }
        Some("--profile") => {
            if let Err(message) = run_profile(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(scenario_exit_code(&message));
            }
        }
        Some("--serve") => {
            if let Err(message) = run_serve(&args[1..]) {
                eprintln!("error: {message}");
                std::process::exit(scenario_exit_code(&message));
            }
        }
        Some(flag) if flag.starts_with("--") => {
            eprintln!("error: unknown flag \"{flag}\" (see --help)");
            std::process::exit(2);
        }
        _ => {
            // Experiment selections are bare names; a flag anywhere else in
            // the list is a misplaced subcommand, not a selection — reject
            // it instead of silently filtering nothing.
            if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
                eprintln!(
                    "error: flag \"{flag}\" must come first (subcommands take no experiment names; see --help)"
                );
                std::process::exit(2);
            }
            let requested: Vec<String> = args.iter().map(|a| a.to_lowercase()).collect();
            run_experiments(&requested);
        }
    }
}
