//! Prints every experiment table (E1–E10) of the reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench-harness --bin experiments            # all experiments
//! cargo run --release -p bench-harness --bin experiments -- e1 e7   # a selection
//! ```

use bench_harness::{
    e10_candidate_sampling, e1_complete_le, e2_tradeoff, e3_mixing_le, e4_diameter_two_le,
    e5_general_le, e6_agreement, e7_star_search, e8_star_counting, e9_walk_ablation,
    ExperimentTable,
};

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let run_all = requested.is_empty();
    let experiments: Vec<(&str, fn() -> ExperimentTable)> = vec![
        ("e1", e1_complete_le as fn() -> ExperimentTable),
        ("e2", e2_tradeoff),
        ("e3", e3_mixing_le),
        ("e4", e4_diameter_two_le),
        ("e5", e5_general_le),
        ("e6", e6_agreement),
        ("e7", e7_star_search),
        ("e8", e8_star_counting),
        ("e9", e9_walk_ablation),
        ("e10", e10_candidate_sampling),
    ];
    println!("Quantum Communication Advantage for Leader Election and Agreement — experiment suite");
    println!("(message counts are measured on the CONGEST simulator; see EXPERIMENTS.md)\n");
    for (name, experiment) in experiments {
        if run_all || requested.iter().any(|r| r == name) {
            let start = std::time::Instant::now();
            let table = experiment();
            println!("{table}");
            println!("  [{name} completed in {:.1?}]\n", start.elapsed());
        }
    }
}
