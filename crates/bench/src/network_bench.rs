//! Round-engine throughput measurement: modern CSR engine (sequential and
//! sharded) vs the frozen [`legacy`] engine, plus GHS as a
//! heavier protocol load.
//!
//! Used two ways:
//!
//! * the `network_core` criterion bench wraps [`flood_modern`] /
//!   [`flood_sharded`] / [`flood_legacy`] / [`ghs_modern`] in its timing
//!   harness,
//! * `experiments --bench-network` calls [`measure_all`] and writes the
//!   results to `BENCH_network.json`, so the performance trajectory of the
//!   round engine is tracked in-repo from this PR onward.
//!
//! The sharded engine (`csr-mtK` records, `K` worker shards on the
//! persistent `rayon` pool) is byte-identical to `csr` in rounds and
//! messages — the determinism suite pins that — so the records differ only
//! in wall-clock time. Its speedup over `csr` is hardware-dependent:
//! dispatch costs a few microseconds per round, so it needs both real cores
//! (≥ the shard count) and enough per-round work to amortise the barrier;
//! on a single-CPU host it degrades gracefully to roughly sequential speed.

use std::time::Instant;

use classical_baselines::GhsLe;
use congest_net::programs::Flood;
use congest_net::{topology, Graph, NetworkConfig, SyncRuntime};
use qle::LeaderElection;

use crate::legacy;

/// The benchmark topologies: name × generator, at a benchmark size.
///
/// Cycle (diameter-bound, degree 2), complete (single-round, degree n−1),
/// and a random 8-regular expander (the "typical" CONGEST workload; degree 8
/// is feasible since `random_regular` repairs the configuration model by
/// edge switching instead of whole-graph rejection).
#[must_use]
pub fn standard_topologies(n: usize) -> Vec<(String, Graph)> {
    vec![
        (format!("cycle/{n}"), topology::cycle(n).expect("cycle")),
        (
            format!("complete/{}", n / 4),
            topology::complete(n / 4).expect("complete"),
        ),
        (
            format!("expander8/{n}"),
            topology::random_regular(n, 8, 7).expect("expander"),
        ),
    ]
}

/// Default number of worker shards for the sharded-engine benchmark records
/// (see [`bench_shards`]).
pub const BENCH_SHARDS: usize = 4;

/// Number of worker shards used for the sharded-engine benchmark records:
/// the `BENCH_SHARDS` environment variable if set to a positive integer,
/// otherwise [`BENCH_SHARDS`] (4). Lets a multi-core host probe scaling
/// without a rebuild; the CI gate only reads the sequential records, so the
/// knob cannot weaken the speedup floor.
#[must_use]
pub fn bench_shards() -> usize {
    std::env::var("BENCH_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&k| k > 0)
        .unwrap_or(BENCH_SHARDS)
}

/// One flood run on the modern engine; returns `(rounds, messages)`.
#[must_use]
pub fn flood_modern(graph: &Graph) -> (u64, u64) {
    let mut runtime = SyncRuntime::new(graph.clone(), NetworkConfig::with_seed(0), |v, _| {
        Flood::new(v == 0)
    });
    let rounds = runtime.run_until_halt(1_000_000).expect("flood run");
    (rounds, runtime.metrics().classical_messages)
}

/// One flood run on the modern engine with `shards` worker shards; returns
/// `(rounds, messages)` — byte-identical to [`flood_modern`] by the
/// deterministic-merge invariant.
#[must_use]
pub fn flood_sharded(graph: &Graph, shards: usize) -> (u64, u64) {
    let mut runtime = SyncRuntime::new(
        graph.clone(),
        NetworkConfig::with_seed(0).shards(shards),
        |v, _| Flood::new(v == 0),
    );
    let rounds = runtime
        .run_until_halt(1_000_000)
        .expect("sharded flood run");
    (rounds, runtime.metrics().classical_messages)
}

/// One flood run on the frozen pre-refactor engine; returns
/// `(rounds, messages)`.
#[must_use]
pub fn flood_legacy(graph: &Graph) -> (u64, u64) {
    legacy::run_flood(graph, 0, 1_000_000)
}

/// One GHS leader-election run on the modern engine; returns
/// `(rounds, messages)`.
#[must_use]
pub fn ghs_modern(graph: &Graph, seed: u64) -> (u64, u64) {
    let run = GhsLe::new().run(graph, seed).expect("ghs run");
    (run.cost.metrics.rounds, run.cost.metrics.total_messages())
}

/// A single timed measurement for the JSON dump.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload name, e.g. `flood`.
    pub workload: String,
    /// Engine variant, `csr` or `legacy`.
    pub engine: String,
    /// Topology label, e.g. `cycle/4096`.
    pub topology: String,
    /// Nodes in the benchmarked graph.
    pub nodes: usize,
    /// Undirected edges in the benchmarked graph.
    pub edges: usize,
    /// Rounds executed per run.
    pub rounds: u64,
    /// Messages delivered per run.
    pub messages: u64,
    /// Timed runs.
    pub runs: u32,
    /// Minimum wall-clock nanoseconds over the timed runs. The minimum is
    /// the noise-robust estimator for a deterministic workload: scheduler
    /// and cache interference only ever *add* time, so the fastest run is
    /// the closest observation of the true cost — medians on a busy host
    /// made the CI speedup guard flaky.
    pub ns_per_run: u128,
}

impl BenchRecord {
    /// Nanoseconds per simulated round (the engine's headline number).
    #[must_use]
    pub fn ns_per_round(&self) -> u128 {
        self.ns_per_run / u128::from(self.rounds.max(1))
    }
}

fn time_runs(runs: u32, mut f: impl FnMut() -> (u64, u64)) -> (u64, u64, u128) {
    // One warm-up run, then `runs` timed runs; report the minimum (see
    // `BenchRecord::ns_per_run` for why minimum rather than median).
    let (rounds, messages) = f();
    let best = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let out = std::hint::black_box(f());
            assert_eq!(out, (rounds, messages), "non-deterministic benchmark run");
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one timed run");
    (rounds, messages, best)
}

/// Measures flood on both engines and GHS on the modern engine over the
/// standard topologies at size `n`, with `runs` timed repetitions each.
#[must_use]
pub fn measure_all(n: usize, runs: u32) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for (label, graph) in standard_topologies(n) {
        let (nodes, edges) = (graph.node_count(), graph.edge_count());
        let mut push = |workload: &str, engine: &str, (rounds, messages, ns): (u64, u64, u128)| {
            records.push(BenchRecord {
                workload: workload.into(),
                engine: engine.into(),
                topology: label.clone(),
                nodes,
                edges,
                rounds,
                messages,
                runs,
                ns_per_run: ns,
            });
        };
        let shards = bench_shards();
        push("flood", "csr", time_runs(runs, || flood_modern(&graph)));
        push(
            "flood",
            &format!("csr-mt{shards}"),
            time_runs(runs, || flood_sharded(&graph, shards)),
        );
        push("flood", "legacy", time_runs(runs, || flood_legacy(&graph)));
        push("ghs", "csr", time_runs(runs, || ghs_modern(&graph, 1)));
    }
    records
}

/// Renders the records as a JSON document (handwritten: the workspace has no
/// serde; every field is numeric or a plain label, so escaping is not
/// needed).
#[must_use]
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"network_core\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"topology\": \"{}\", \
             \"nodes\": {}, \"edges\": {}, \"rounds\": {}, \"messages\": {}, \
             \"runs\": {}, \"ns_per_run\": {}, \"ns_per_round\": {}}}{}\n",
            r.workload,
            r.engine,
            r.topology,
            r.nodes,
            r.edges,
            r.rounds,
            r.messages,
            r.runs,
            r.ns_per_run,
            r.ns_per_round(),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_counts() {
        let graph = topology::cycle(64).unwrap();
        let modern = flood_modern(&graph);
        let legacy = flood_legacy(&graph);
        assert_eq!(modern, legacy);
        for shards in [2usize, BENCH_SHARDS, 8] {
            assert_eq!(flood_sharded(&graph, shards), modern, "shards = {shards}");
        }
    }

    #[test]
    fn sharded_agrees_on_every_standard_topology() {
        for (label, graph) in standard_topologies(256) {
            assert_eq!(
                flood_sharded(&graph, BENCH_SHARDS),
                flood_modern(&graph),
                "topology {label}"
            );
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let records = vec![BenchRecord {
            workload: "flood".into(),
            engine: "csr".into(),
            topology: "cycle/64".into(),
            nodes: 64,
            edges: 64,
            rounds: 33,
            messages: 128,
            runs: 3,
            ns_per_run: 1000,
        }];
        let json = to_json(&records);
        assert!(json.contains("\"ns_per_round\": 30"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
