//! Round-engine throughput measurement: modern CSR engine (sequential and
//! sharded) vs the frozen [`legacy`] engine, plus GHS as a
//! heavier protocol load.
//!
//! Used two ways:
//!
//! * the `network_core` criterion bench wraps [`flood_modern`] /
//!   [`flood_sharded`] / [`flood_legacy`] / [`ghs_modern`] in its timing
//!   harness,
//! * `experiments --bench-network` calls [`measure_all`] and writes the
//!   results to `BENCH_network.json`, so the performance trajectory of the
//!   round engine is tracked in-repo from this PR onward.
//!
//! The sharded engine (`csr-mtK` records, `K` worker shards on the
//! persistent `rayon` pool) is byte-identical to `csr` in rounds and
//! messages — the determinism suite pins that — so the records differ only
//! in wall-clock time. Its speedup over `csr` is hardware-dependent:
//! dispatch costs a few microseconds per round, so it needs both real cores
//! (≥ the shard count) and enough per-round work to amortise the barrier;
//! on a single-CPU host it degrades gracefully to roughly sequential speed.

use std::time::Instant;

use classical_baselines::GhsLe;
use congest_net::programs::{Flood, FloodFt};
use congest_net::{topology, Graph, Network, NetworkConfig, SyncRuntime};
use qle::{LeaderElection, RunOptions};

use crate::legacy;

/// The benchmark topologies: name × generator, at a benchmark size.
///
/// Cycle (diameter-bound, degree 2), complete (single-round, degree n−1),
/// and a random 8-regular expander (the "typical" CONGEST workload; degree 8
/// is feasible since `random_regular` repairs the configuration model by
/// edge switching instead of whole-graph rejection).
#[must_use]
pub fn standard_topologies(n: usize) -> Vec<(String, Graph)> {
    vec![
        (format!("cycle/{n}"), topology::cycle(n).expect("cycle")),
        (
            format!("complete/{}", n / 4),
            topology::complete(n / 4).expect("complete"),
        ),
        (
            format!("expander8/{n}"),
            topology::random_regular(n, 8, 7).expect("expander"),
        ),
    ]
}

/// Default number of worker shards for the sharded-engine benchmark records
/// (see [`bench_shards`]).
pub const BENCH_SHARDS: usize = 4;

/// Number of worker shards used for the sharded-engine benchmark records:
/// the `BENCH_SHARDS` environment variable if set to a positive integer,
/// otherwise [`BENCH_SHARDS`] (4). Lets a multi-core host probe scaling
/// without a rebuild; the CI gate only reads the sequential records, so the
/// knob cannot weaken the speedup floor.
#[must_use]
pub fn bench_shards() -> usize {
    std::env::var("BENCH_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&k| k > 0)
        .unwrap_or(BENCH_SHARDS)
}

/// One flood run on the modern engine; returns `(rounds, messages)`.
#[must_use]
pub fn flood_modern(graph: &Graph) -> (u64, u64) {
    let mut runtime = SyncRuntime::new(graph.clone(), NetworkConfig::with_seed(0), |v, _| {
        Flood::new(v == 0)
    });
    let rounds = runtime.run_until_halt(1_000_000).expect("flood run");
    (rounds, runtime.metrics().classical_messages)
}

/// One flood run on the modern engine with `shards` worker shards; returns
/// `(rounds, messages)` — byte-identical to [`flood_modern`] by the
/// deterministic-merge invariant.
#[must_use]
pub fn flood_sharded(graph: &Graph, shards: usize) -> (u64, u64) {
    let mut runtime = SyncRuntime::new(
        graph.clone(),
        NetworkConfig::with_seed(0).shards(shards),
        |v, _| Flood::new(v == 0),
    );
    let rounds = runtime
        .run_until_halt(1_000_000)
        .expect("sharded flood run");
    (rounds, runtime.metrics().classical_messages)
}

/// One flood run on the frozen pre-refactor engine; returns
/// `(rounds, messages)`.
#[must_use]
pub fn flood_legacy(graph: &Graph) -> (u64, u64) {
    legacy::run_flood(graph, 0, 1_000_000)
}

/// One GHS leader-election run on the modern engine; returns
/// `(rounds, messages)`.
#[must_use]
pub fn ghs_modern(graph: &Graph, seed: u64) -> (u64, u64) {
    let run = GhsLe::new().run(graph, seed).expect("ghs run");
    (run.cost.metrics.rounds, run.cost.metrics.total_messages())
}

/// One GHS run with the network configured for `shards` worker shards;
/// returns `(rounds, messages)` — byte-identical to [`ghs_modern`].
///
/// GHS is a *driver-based* protocol: it sends through the `Network` handle
/// from the calling thread, so today the shard configuration only changes
/// the barrier bookkeeping, not the execution. The `csr-mtK` record this
/// feeds is the **baseline** for the merge-free-scaling follow-up (making
/// driver-based protocols runtime-driven so they actually fan out); any
/// future speedup shows up as this record diverging from `csr`.
#[must_use]
pub fn ghs_sharded(graph: &Graph, seed: u64, shards: usize) -> (u64, u64) {
    let opts = RunOptions {
        shards,
        ..RunOptions::default()
    };
    let run = GhsLe::new()
        .run_with(graph, seed, &opts)
        .expect("sharded ghs run")
        .run;
    (run.cost.metrics.rounds, run.cost.metrics.total_messages())
}

/// One fault-tolerant flood run ([`FloodFt`], fault-free) on the modern
/// engine; returns `(rounds, messages)`. Fault-free it terminates in
/// `ecc(source) + O(1)` rounds with `O(m)` messages (token plus acks), so
/// it is feasible at the large-n tier on any structured family.
#[must_use]
pub fn flood_ft_modern(graph: &Graph) -> (u64, u64) {
    let mut runtime = SyncRuntime::new(graph.clone(), NetworkConfig::with_seed(0), |v, d| {
        FloodFt::new(v == 0, d)
    });
    let rounds = runtime.run_until_halt(1_000_000).expect("flood-ft run");
    (rounds, runtime.metrics().classical_messages)
}

/// A single-round broadcast from node 0 on the raw `Network` handle;
/// returns `(rounds, messages)`.
///
/// This is the large-n workload for the complete graph: a full flood on
/// `K_n` is Θ(n²) messages (every covered node broadcasts to all n−1
/// neighbours), which at a million nodes is a terabyte of traffic — so the
/// tier measures the round-engine cost of the *achievable* dense-topology
/// operation, one maximal-degree broadcast plus its delivery barrier.
#[must_use]
pub fn broadcast_once(graph: &Graph) -> (u64, u64) {
    let mut net: Network<u64> = Network::new(graph.clone(), NetworkConfig::with_seed(0));
    net.broadcast(0, 1).expect("broadcast");
    net.advance_round();
    let m = net.metrics();
    (m.rounds, m.classical_messages)
}

/// One GHS cluster-probe phase (the Θ(m) query/reply exchange of the
/// baseline's step 1, with every node in its own singleton cluster) driven
/// directly on the `Network` handle; returns `(rounds, messages)`.
///
/// A *full* GHS run at the large-n tier is infeasible driver-side (the
/// merge bookkeeping materialises per-cluster trees, O(n²) over all
/// phases), so the tier measures the phase that dominates GHS's message
/// complexity and exercises the same send/deliver path.
#[must_use]
pub fn ghs_probe(graph: &Graph) -> (u64, u64) {
    let n = graph.node_count();
    let mut net: Network<u64> = Network::new(graph.clone(), NetworkConfig::with_seed(0));
    // Query round: every node asks all neighbours for their cluster id.
    for v in 0..n {
        net.broadcast(v, v as u64).expect("probe query");
    }
    net.advance_round();
    // Reply round: answer each received query on its arrival port with
    // whether the edge crosses a cluster boundary (all edges do, since
    // every cluster is a singleton — matching GHS phase one exactly).
    let mut scratch = Vec::new();
    for v in 0..n {
        net.swap_inbox(v, &mut scratch);
        for &(_, port, c) in scratch.iter() {
            net.send_through_port(v, port, u64::from(c != v as u64))
                .expect("probe reply");
        }
    }
    net.advance_round();
    let m = net.metrics();
    (m.rounds, m.classical_messages)
}

/// A single timed measurement for the JSON dump.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload name, e.g. `flood`.
    pub workload: String,
    /// Engine variant, `csr` or `legacy`.
    pub engine: String,
    /// Topology label, e.g. `cycle/4096`.
    pub topology: String,
    /// Nodes in the benchmarked graph.
    pub nodes: usize,
    /// Undirected edges in the benchmarked graph.
    pub edges: usize,
    /// Rounds executed per run.
    pub rounds: u64,
    /// Messages delivered per run.
    pub messages: u64,
    /// Timed runs.
    pub runs: u32,
    /// Minimum wall-clock nanoseconds over the timed runs. The minimum is
    /// the noise-robust estimator for a deterministic workload: scheduler
    /// and cache interference only ever *add* time, so the fastest run is
    /// the closest observation of the true cost — medians on a busy host
    /// made the CI speedup guard flaky.
    pub ns_per_run: u128,
}

impl BenchRecord {
    /// Nanoseconds per simulated round (the engine's headline number).
    #[must_use]
    pub fn ns_per_round(&self) -> u128 {
        self.ns_per_run / u128::from(self.rounds.max(1))
    }
}

fn time_runs(runs: u32, mut f: impl FnMut() -> (u64, u64)) -> (u64, u64, u128) {
    // One warm-up run, then `runs` timed runs; report the minimum (see
    // `BenchRecord::ns_per_run` for why minimum rather than median).
    let (rounds, messages) = f();
    let best = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let out = std::hint::black_box(f());
            assert_eq!(out, (rounds, messages), "non-deterministic benchmark run");
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one timed run");
    (rounds, messages, best)
}

/// Measures flood on both engines and GHS on the modern engine over the
/// standard topologies at size `n`, with `runs` timed repetitions each.
#[must_use]
pub fn measure_all(n: usize, runs: u32) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for (label, graph) in standard_topologies(n) {
        let (nodes, edges) = (graph.node_count(), graph.edge_count());
        let mut push = |workload: &str, engine: &str, (rounds, messages, ns): (u64, u64, u128)| {
            records.push(BenchRecord {
                workload: workload.into(),
                engine: engine.into(),
                topology: label.clone(),
                nodes,
                edges,
                rounds,
                messages,
                runs,
                ns_per_run: ns,
            });
        };
        let shards = bench_shards();
        push("flood", "csr", time_runs(runs, || flood_modern(&graph)));
        push(
            "flood",
            &format!("csr-mt{shards}"),
            time_runs(runs, || flood_sharded(&graph, shards)),
        );
        push("flood", "legacy", time_runs(runs, || flood_legacy(&graph)));
        push("ghs", "csr", time_runs(runs, || ghs_modern(&graph, 1)));
        push(
            "ghs",
            &format!("csr-mt{shards}"),
            time_runs(runs, || ghs_sharded(&graph, 1, shards)),
        );
    }
    records
}

/// Node count of the large-n benchmark tier: `2^20` (a million-node data
/// plane), feasible only because the structured families are implicit.
pub const LARGE_N: usize = 1 << 20;

/// Largest CSR graph on which bench code may call the exact
/// [`Graph::diameter`] (all-pairs BFS, O(n · m)). Implicit families are
/// exempt — their diameter is a closed form, O(1) at any size — but a
/// materialized graph past this cutoff would silently reintroduce the very
/// O(n²) scan the large-n tier exists to avoid, so bench code must route
/// through [`checked_diameter`] instead of calling `diameter()` directly.
pub const DIAMETER_FULL_CHECK_MAX_N: usize = 1 << 14;

/// [`Graph::diameter`] guarded by the bench-side size cutoff: `None` means
/// "too large to BFS" (a CSR graph above [`DIAMETER_FULL_CHECK_MAX_N`]),
/// never an infinite diameter.
#[must_use]
pub fn checked_diameter(graph: &Graph) -> Option<usize> {
    (graph.is_implicit() || graph.node_count() <= DIAMETER_FULL_CHECK_MAX_N)
        .then(|| graph.diameter())
}

/// The large-n tier: one record per structured family × feasible workload,
/// all on implicit backends (graph memory O(1), round state O(n + active)).
///
/// Workloads are chosen so total traffic is O(m) or less per run — see
/// [`broadcast_once`] and [`ghs_probe`] for why complete graphs and GHS get
/// bounded phases instead of full runs. Engine label `implicit`
/// distinguishes these records from the CSR tier (and keeps them out of the
/// `csr` vs `legacy` speedup gate, which only reads `csr` records).
#[must_use]
pub fn measure_large(runs: u32) -> Vec<BenchRecord> {
    let star = topology::star(LARGE_N).expect("star");
    let cube = topology::hypercube(20).expect("hypercube");
    let complete = topology::complete(LARGE_N).expect("complete");
    let torus = topology::torus(1 << 10, 1 << 10).expect("torus");
    type LargeCell<'a> = (&'a str, String, &'a Graph, fn(&Graph) -> (u64, u64));
    let cells: Vec<LargeCell<'_>> = vec![
        ("flood", format!("star/{LARGE_N}"), &star, flood_modern),
        (
            "flood-ft",
            format!("star/{LARGE_N}"),
            &star,
            flood_ft_modern,
        ),
        ("flood", format!("hypercube/{LARGE_N}"), &cube, flood_modern),
        (
            "broadcast",
            format!("complete/{LARGE_N}"),
            &complete,
            broadcast_once,
        ),
        ("ghs-probe", format!("torus/{LARGE_N}"), &torus, ghs_probe),
    ];
    let mut records = Vec::new();
    for (workload, label, graph, run) in cells {
        assert!(graph.is_implicit(), "large-n tier requires O(1) graphs");
        let (rounds, messages, ns) = time_runs(runs, || run(graph));
        records.push(BenchRecord {
            workload: workload.into(),
            engine: "implicit".into(),
            topology: label,
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            rounds,
            messages,
            runs,
            ns_per_run: ns,
        });
    }
    records
}

/// Renders the records as a JSON document (handwritten: the workspace has no
/// serde; every field is numeric or a plain label, so escaping is not
/// needed).
#[must_use]
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"network_core\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"topology\": \"{}\", \
             \"nodes\": {}, \"edges\": {}, \"rounds\": {}, \"messages\": {}, \
             \"runs\": {}, \"ns_per_run\": {}, \"ns_per_round\": {}}}{}\n",
            r.workload,
            r.engine,
            r.topology,
            r.nodes,
            r.edges,
            r.rounds,
            r.messages,
            r.runs,
            r.ns_per_run,
            r.ns_per_round(),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_counts() {
        let graph = topology::cycle(64).unwrap();
        let modern = flood_modern(&graph);
        let legacy = flood_legacy(&graph);
        assert_eq!(modern, legacy);
        for shards in [2usize, BENCH_SHARDS, 8] {
            assert_eq!(flood_sharded(&graph, shards), modern, "shards = {shards}");
        }
    }

    #[test]
    fn sharded_agrees_on_every_standard_topology() {
        for (label, graph) in standard_topologies(256) {
            assert_eq!(
                flood_sharded(&graph, BENCH_SHARDS),
                flood_modern(&graph),
                "topology {label}"
            );
        }
    }

    #[test]
    fn ghs_sharded_agrees_with_sequential() {
        let graph = topology::random_regular(96, 8, 7).unwrap();
        assert_eq!(ghs_sharded(&graph, 1, BENCH_SHARDS), ghs_modern(&graph, 1));
    }

    #[test]
    fn large_tier_workloads_scale_down() {
        // The same workload functions at toy sizes, so the tier's arithmetic
        // is testable without a million-node run.
        let star = topology::star(64).unwrap();
        let (rounds, messages) = broadcast_once(&star);
        assert_eq!((rounds, messages), (1, 63));
        let (_, ft_messages) = flood_ft_modern(&star);
        assert!(ft_messages >= 2 * 63, "token + acks at least");
        let torus = topology::torus(4, 4).unwrap();
        let (rounds, messages) = ghs_probe(&torus);
        // Query + reply, every directed edge used in both rounds.
        assert_eq!((rounds, messages), (2, 2 * 2 * 2 * 16));
    }

    #[test]
    fn checked_diameter_guards_large_csr_graphs() {
        let implicit = topology::hypercube(6).unwrap();
        assert_eq!(checked_diameter(&implicit), Some(6));
        assert_eq!(
            checked_diameter(&implicit.materialize()),
            Some(6),
            "small CSR graphs still BFS"
        );
        // A materialized graph past the cutoff must refuse, not scan. Build
        // the boundary case cheaply: fake the size check by construction.
        const { assert!(64 <= DIAMETER_FULL_CHECK_MAX_N) };
        const { assert!(LARGE_N > DIAMETER_FULL_CHECK_MAX_N) };
    }

    #[test]
    fn json_is_well_formed_enough() {
        let records = vec![BenchRecord {
            workload: "flood".into(),
            engine: "csr".into(),
            topology: "cycle/64".into(),
            nodes: 64,
            edges: 64,
            rounds: 33,
            messages: 128,
            runs: 3,
            ns_per_run: 1000,
        }];
        let json = to_json(&records);
        assert!(json.contains("\"ns_per_round\": 30"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
