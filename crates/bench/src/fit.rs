//! Log–log least-squares exponent fitting.

/// Fits `y ≈ c · x^e` to the given points by ordinary least squares on
/// `(ln x, ln y)` and returns the exponent `e`.
///
/// Points with non-positive coordinates are ignored; fewer than two usable
/// points yield an exponent of 0.
#[must_use]
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return 0.0;
    }
    let n = logs.len() as f64;
    let sum_x: f64 = logs.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = logs.iter().map(|(_, y)| y).sum();
    let sum_xx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sum_xy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denominator = n * sum_xx - sum_x * sum_x;
    if denominator.abs() < 1e-12 {
        return 0.0;
    }
    (n * sum_xy - sum_x * sum_y) / denominator
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_power_laws() {
        let square: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((fit_exponent(&square) - 2.0).abs() < 1e-9);
        let sqrt: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i as f64).sqrt())).collect();
        assert!((fit_exponent(&sqrt) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tolerates_constants_and_ignores_bad_points() {
        let points: Vec<(f64, f64)> = (1..30)
            .map(|i| (i as f64, 17.0 * (i as f64).powf(1.5)))
            .collect();
        assert!((fit_exponent(&points) - 1.5).abs() < 1e-9);
        assert_eq!(fit_exponent(&[(0.0, 1.0), (-1.0, 2.0)]), 0.0);
        assert_eq!(fit_exponent(&[(2.0, 4.0)]), 0.0);
    }
}
