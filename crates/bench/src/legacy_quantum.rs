//! A frozen copy of the **pre-SoA** scalar state-vector kernels, kept solely
//! as the baseline side of the `quantum_core` microbenchmark.
//!
//! This reproduces, faithfully and deliberately, the amplitude loops as they
//! existed before the structure-of-arrays refactor of
//! `quantum_sim::statevector`:
//!
//! * amplitudes stored as one `Vec<Complex>` (array-of-structs),
//! * sequential `fold`-style reductions whose loop-carried complex addition
//!   keeps the pass latency-bound,
//! * a conditionally-negating phase oracle (`if f(x) { *amp = -*amp; }`)
//!   whose data-dependent store stalls on unpredictable oracles.
//!
//! Do **not** use this for anything but measurement: it exists so the
//! benchmark can report "scalar kernels vs SoA kernels" numbers on identical
//! workloads from a single binary, and so future sessions can re-verify the
//! speedup claim in `BENCH_quantum.json` without digging through git
//! history.

use quantum_sim::Complex;
use rand::rngs::StdRng;
use rand::Rng;

/// The seed's dense state vector: one array-of-structs amplitude buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyStateVector {
    amplitudes: Vec<Complex>,
}

impl LegacyStateVector {
    /// The uniform superposition over `dim` basis states. Panics on
    /// `dim == 0` (the bench never builds degenerate states).
    #[must_use]
    pub fn uniform(dim: usize) -> Self {
        assert!(dim > 0, "legacy bench state must be non-empty");
        let amp = Complex::real(1.0 / (dim as f64).sqrt());
        LegacyStateVector {
            amplitudes: vec![amp; dim],
        }
    }

    /// Builds a state from raw amplitudes, normalising them exactly as the
    /// pre-refactor constructor did (sequential norm accumulation).
    #[must_use]
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        let norm: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm >= 1e-300, "legacy bench state must have non-zero norm");
        let amplitudes = amplitudes
            .into_iter()
            .map(|a| a.scale(1.0 / norm))
            .collect();
        LegacyStateVector { amplitudes }
    }

    /// Dimension of the Hilbert space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.amplitudes.len()
    }

    /// The amplitude of basis state `index`.
    #[must_use]
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amplitudes[index]
    }

    /// The squared norm of the state (sequential scalar reduction).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// The inner product `⟨self|other⟩` (sequential scalar reduction).
    #[must_use]
    pub fn inner_product(&self, other: &LegacyStateVector) -> Complex {
        assert_eq!(self.dim(), other.dim());
        let mut acc = Complex::ZERO;
        for (a, b) in self.amplitudes.iter().zip(&other.amplitudes) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Applies the phase oracle with the frozen conditional-negation loop.
    pub fn apply_phase_oracle(&mut self, f: impl Fn(usize) -> bool) {
        for (x, amp) in self.amplitudes.iter_mut().enumerate() {
            if f(x) {
                *amp = -*amp;
            }
        }
    }

    /// Applies the Grover diffusion operator with the frozen sequential-fold
    /// mean.
    pub fn apply_diffusion(&mut self) {
        let dim = self.dim() as f64;
        let mean = self
            .amplitudes
            .iter()
            .fold(Complex::ZERO, |acc, a| acc + *a)
            .scale(1.0 / dim);
        for amp in &mut self.amplitudes {
            *amp = mean.scale(2.0) - *amp;
        }
    }

    /// Total probability mass on the indices where `f(x)` is true (frozen
    /// filter-map-sum form).
    #[must_use]
    pub fn success_probability(&self, f: impl Fn(usize) -> bool) -> f64 {
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(x, _)| f(*x))
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Builds the cumulative distribution exactly as the frozen sampler did.
    #[must_use]
    pub fn sampler(&self) -> LegacySampler {
        let mut cdf = Vec::with_capacity(self.dim());
        let mut acc = 0.0;
        for amp in &self.amplitudes {
            acc += amp.norm_sqr();
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = f64::INFINITY;
        }
        LegacySampler { cdf }
    }

    /// Draws `count` outcomes through one cached cumulative distribution.
    #[must_use]
    pub fn sample_many(&self, count: usize, rng: &mut StdRng) -> Vec<usize> {
        let sampler = self.sampler();
        (0..count).map(|_| sampler.sample(rng)).collect()
    }
}

/// The frozen cached-CDF sampler.
#[derive(Debug, Clone)]
pub struct LegacySampler {
    cdf: Vec<f64>,
}

impl LegacySampler {
    /// Samples one outcome by binary search over the cumulative
    /// distribution.
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let draw: f64 = rng.gen();
        self.cdf.partition_point(|&acc| acc <= draw)
    }
}
