//! The experiment suite E1–E10 (see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded results).
//!
//! Every experiment returns an [`ExperimentTable`] whose rows are measured on
//! the metered CONGEST simulator. Message counts follow the paper's
//! definition of (quantum) message complexity; fitted exponents are reported
//! in the table notes so the scaling *shape* of each theorem can be compared
//! against its classical baseline directly.
//!
//! The quantum protocols are run in their constant-success configuration
//! (`α = 1/4`) for the scaling sweeps: the paper's `α = 1/n²` setting only
//! changes the measured counts by an explicit `O(log n)` amplification factor
//! but would otherwise dominate the constants at simulable sizes (this
//! substitution and its effect are documented in EXPERIMENTS.md).

use classical_baselines::{
    AmpSharedCoinAgreement, CprDiameterTwoLe, GhsLe, KppCompleteLe, KppMixingLe,
    PrivateCoinAgreement,
};
use congest_net::topology;
use qle::algorithms::{QuantumAgreement, QuantumGeneralLe, QuantumLe, QuantumQwLe, QuantumRwLe};
use qle::candidate::{sample_candidates_seeded, satisfies_fact_c2};
use qle::star::{
    classical_star_count, classical_star_search, quantum_star_count, quantum_star_search,
};
use qle::{Agreement, AlphaChoice, KChoice, LeaderElection};
use rayon::prelude::*;

use crate::fit::fit_exponent;
use crate::table::ExperimentTable;

/// Number of seeds averaged per configuration in the sweep experiments.
const SEEDS: u64 = 2;

/// Runs `protocol` once per seed **in parallel** and averages the measured
/// costs. Every seed is an independent simulation with its own network, so
/// the sweep is embarrassingly parallel; per-seed results are merged in seed
/// order, keeping the averages bit-identical to the sequential loop.
fn average_le<P: LeaderElection + Sync>(
    protocol: &P,
    graph: &congest_net::Graph,
    seeds: u64,
) -> (f64, f64, f64) {
    let runs: Vec<(f64, f64, f64)> = (0..seeds)
        .into_par_iter()
        .map(|seed| {
            let run = protocol.run(graph, seed).expect("protocol run failed");
            (
                run.cost.total_messages() as f64,
                run.cost.effective_rounds as f64,
                f64::from(u8::from(run.succeeded())),
            )
        })
        .collect();
    let (messages, rounds, successes) = runs
        .iter()
        .fold((0.0, 0.0, 0.0), |(m, r, s), &(rm, rr, rs)| {
            (m + rm, r + rr, s + rs)
        });
    (
        messages / seeds as f64,
        rounds / seeds as f64,
        successes / seeds as f64,
    )
}

/// E1 — Theorem 5.2 / Corollary 5.3: `QuantumLE` on complete graphs versus
/// the classical `Õ(√n)` protocol.
#[must_use]
pub fn e1_complete_le() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E1 (Cor 5.3): leader election on complete graphs — QuantumLE vs classical sqrt(n)",
        &[
            "n",
            "quantum msgs",
            "quantum rounds",
            "classical msgs",
            "classical rounds",
            "q success",
            "c success",
        ],
    );
    let quantum = QuantumLe::with_parameters(KChoice::Optimal, AlphaChoice::Fixed(0.25));
    let classical = KppCompleteLe::new();
    let sizes = [64usize, 128, 256, 512, 1024];
    let mut q_points = Vec::new();
    let mut c_points = Vec::new();
    for &n in &sizes {
        let graph = topology::complete(n).expect("complete graph");
        let (qm, qr, qs) = average_le(&quantum, &graph, SEEDS);
        let (cm, cr, cs) = average_le(&classical, &graph, SEEDS);
        q_points.push((n as f64, qm));
        c_points.push((n as f64, cm));
        table.push_row(vec![
            n.to_string(),
            format!("{qm:.0}"),
            format!("{qr:.0}"),
            format!("{cm:.0}"),
            format!("{cr:.0}"),
            format!("{qs:.2}"),
            format!("{cs:.2}"),
        ]);
    }
    table.push_note(format!(
        "fitted exponent: quantum {:.2} (paper: 1/3 ≈ 0.33 plus log factors), classical {:.2} (paper: 1/2 plus log factors)",
        fit_exponent(&q_points),
        fit_exponent(&c_points)
    ));
    let normalise = |points: &[(f64, f64)]| {
        let normalised: Vec<(f64, f64)> = points
            .iter()
            .map(|&(n, y)| (n, y / n.ln().powi(2)))
            .collect();
        fit_exponent(&normalised)
    };
    table.push_note(format!(
        "log-normalised exponent (messages / ln²n, removing the candidate-count and amplification logs): quantum {:.2} (→ 1/3), classical {:.2} (→ 1/2)",
        normalise(&q_points),
        normalise(&c_points)
    ));
    table.push_note("quantum run in constant-success mode (α = 1/4); see EXPERIMENTS.md for the α = 1/n² counts");
    table
}

/// E2 — the round/message trade-off of Section 5.1: sweeping `k` at fixed `n`.
#[must_use]
pub fn e2_tradeoff() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E2 (Thm 5.2): QuantumLE round/message trade-off in k at n = 512",
        &["k exponent", "k", "messages", "effective rounds"],
    );
    let n = 512usize;
    let graph = topology::complete(n).expect("complete graph");
    for &exponent in &[0.25, 1.0 / 3.0, 5.0 / 12.0, 0.5] {
        let protocol =
            QuantumLe::with_parameters(KChoice::Exponent(exponent), AlphaChoice::Fixed(0.25));
        let (messages, rounds, _) = average_le(&protocol, &graph, SEEDS);
        let k = (n as f64).powf(exponent).round() as usize;
        table.push_row(vec![
            format!("{exponent:.3}"),
            k.to_string(),
            format!("{messages:.0}"),
            format!("{rounds:.0}"),
        ]);
    }
    table.push_note("larger k spends more classical messages to shorten the quantum search, as in the paper's k = n^{5/12} example");
    table
}

/// E3 — Theorem 5.4 / Corollary 5.5: `QuantumRWLE` on small-mixing-time
/// graphs versus the classical `Õ(τ√n)` random-walk protocol.
#[must_use]
pub fn e3_mixing_le() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E3 (Cor 5.5): leader election with mixing time τ — QuantumRWLE vs classical τ·sqrt(n)",
        &[
            "graph",
            "n",
            "τ",
            "quantum msgs",
            "classical msgs",
            "q success",
            "c success",
        ],
    );
    let mut q_points = Vec::new();
    let mut c_points = Vec::new();
    for &dim in &[6u32, 7, 8, 9] {
        let graph = topology::hypercube(dim).expect("hypercube");
        let n = graph.node_count();
        // The lazy walk on Q_d mixes in Θ(d·log d) steps, not d steps.
        let tau = (f64::from(dim) * f64::from(dim).ln()).ceil() as usize;
        let quantum =
            QuantumRwLe::with_parameters(KChoice::Optimal, AlphaChoice::Fixed(0.25), Some(tau));
        let classical = KppMixingLe::with_tau(tau);
        let (qm, _, qs) = average_le(&quantum, &graph, SEEDS);
        let (cm, _, cs) = average_le(&classical, &graph, SEEDS);
        q_points.push((n as f64, qm));
        c_points.push((n as f64, cm));
        table.push_row(vec![
            format!("hypercube Q{dim}"),
            n.to_string(),
            tau.to_string(),
            format!("{qm:.0}"),
            format!("{cm:.0}"),
            format!("{qs:.2}"),
            format!("{cs:.2}"),
        ]);
    }
    table.push_note(format!(
        "fitted exponent in n (τ = log n): quantum {:.2} (paper: 1/3 plus τ^{{5/3}} and log factors), classical {:.2} (paper: 1/2 plus τ and log factors)",
        fit_exponent(&q_points),
        fit_exponent(&c_points)
    ));
    table
}

/// E4 — Theorem 5.6 / Corollary 5.7: `QuantumQWLE` on diameter-2 graphs
/// versus the classical `Õ(n)` protocol.
#[must_use]
pub fn e4_diameter_two_le() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E4 (Cor 5.7): leader election on diameter-2 graphs — QuantumQWLE vs classical Θ(n)",
        &[
            "graph",
            "n",
            "quantum msgs",
            "classical msgs",
            "q success",
            "c success",
        ],
    );
    let mut q_points = Vec::new();
    let mut c_points = Vec::new();
    for &side in &[6usize, 8, 10, 12] {
        let graph = topology::clique_of_cliques(side).expect("clique of cliques");
        let n = graph.node_count();
        let quantum = QuantumQwLe::benchmark_profile(n);
        let classical = CprDiameterTwoLe {
            skip_full_topology_check: true,
        };
        let (qm, _, qs) = average_le(&quantum, &graph, 1);
        let (cm, _, cs) = average_le(&classical, &graph, SEEDS);
        q_points.push((n as f64, qm));
        c_points.push((n as f64, cm));
        table.push_row(vec![
            format!("clique-of-cliques({side})"),
            n.to_string(),
            format!("{qm:.0}"),
            format!("{cm:.0}"),
            format!("{qs:.2}"),
            format!("{cs:.2}"),
        ]);
    }
    table.push_note(format!(
        "fitted exponent: quantum {:.2} (paper: 2/3 plus log factors), classical {:.2} (paper: 1 plus log factors)",
        fit_exponent(&q_points),
        fit_exponent(&c_points)
    ));
    table.push_note("the quantum walk's nested amplification constants dominate at these sizes; the exponent, not the absolute count, is the reproduction target");
    table
}

/// E5 — Theorem 5.10: `QuantumGeneralLE` on arbitrary graphs versus the
/// classical GHS-style `Θ(m log n)` protocol.
#[must_use]
pub fn e5_general_le() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E5 (Thm 5.10): leader election on general graphs — QuantumGeneralLE vs classical tree merging",
        &["n", "m", "quantum msgs", "classical msgs", "q success", "c success"],
    );
    let quantum = QuantumGeneralLe::with_alpha(AlphaChoice::Fixed(0.3));
    let classical = GhsLe::new();
    let mut q_points = Vec::new();
    let mut c_points = Vec::new();
    for &n in &[32usize, 64, 128, 256] {
        let graph = topology::erdos_renyi_connected(n, 8.0 / n as f64, 17).expect("erdos-renyi");
        let m = graph.edge_count();
        let (qm, _, qs) = average_le(&quantum, &graph, SEEDS);
        let (cm, _, cs) = average_le(&classical, &graph, SEEDS);
        q_points.push(((n * m) as f64, qm * qm)); // (√(mn))² = m·n
        c_points.push((m as f64, cm));
        table.push_row(vec![
            n.to_string(),
            m.to_string(),
            format!("{qm:.0}"),
            format!("{cm:.0}"),
            format!("{qs:.2}"),
            format!("{cs:.2}"),
        ]);
    }
    table.push_note(format!(
        "fitted exponent of quantum msgs² in m·n: {:.2} (paper: 1.0, i.e. msgs ~ √(m·n)); classical msgs in m: {:.2} (paper: ~1.0 per phase)",
        fit_exponent(&q_points),
        fit_exponent(&c_points)
    ));
    table
}

/// E6 — Theorem 6.7 / Corollary 6.8: `QuantumAgreement` versus the classical
/// shared-coin and private-coin agreement baselines.
#[must_use]
pub fn e6_agreement() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E6 (Cor 6.8): implicit agreement on complete graphs with shared randomness",
        &[
            "n",
            "quantum msgs",
            "AMP shared-coin msgs",
            "private-coin msgs",
            "q valid",
            "amp valid",
        ],
    );
    let quantum = QuantumAgreement::with_parameters(None, None, AlphaChoice::Fixed(0.25));
    let amp = AmpSharedCoinAgreement::new();
    let private = PrivateCoinAgreement::new();
    for &n in &[64usize, 256, 1024] {
        let graph = topology::complete(n).expect("complete graph");
        let inputs: Vec<bool> = (0..n).map(|i| i % 10 < 3).collect();
        let q = quantum.run(&graph, &inputs, 1).expect("quantum agreement");
        let a = amp.run(&graph, &inputs, 1).expect("amp agreement");
        let p = private.run(&graph, &inputs, 1).expect("private agreement");
        table.push_row(vec![
            n.to_string(),
            q.cost.total_messages().to_string(),
            a.cost.total_messages().to_string(),
            p.cost.total_messages().to_string(),
            format!("{}", q.succeeded()),
            format!("{}", a.succeeded()),
        ]);
    }
    table.push_note("the paper's ε = n^{-1/5} only drops below its admissible ceiling of 1/20 for n > 20^5, so at simulable sizes both protocols run at ε = 1/20 and the n^{1/5} vs n^{2/5} separation shows up through the 1/ε vs 1/ε² estimation costs (E8) and the detection trade-off rather than through the n-sweep");
    table
}

/// E7 — Appendix B.2 (Searching): distributed Grover search on a star graph
/// versus querying every leaf.
#[must_use]
pub fn e7_star_search() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E7 (Thm 4.1, App. B.2): searching a star graph — quantum O(√n) vs classical Θ(n)",
        &["leaves", "quantum msgs", "classical msgs", "quantum found"],
    );
    let mut q_points = Vec::new();
    let mut c_points = Vec::new();
    for &n in &[256usize, 1024, 4096, 16384] {
        let inputs: Vec<bool> = (0..n).map(|i| i == n / 2).collect();
        let quantum = quantum_star_search(&inputs, 1, 0.1, 5).expect("quantum star search");
        let classical = classical_star_search(&inputs, 5).expect("classical star search");
        q_points.push((n as f64, quantum.messages as f64));
        c_points.push((n as f64, classical.messages as f64));
        table.push_row(vec![
            n.to_string(),
            quantum.messages.to_string(),
            classical.messages.to_string(),
            quantum.found.to_string(),
        ]);
    }
    table.push_note(format!(
        "fitted exponent: quantum {:.2} (paper: 0.5), classical {:.2} (paper: 1.0)",
        fit_exponent(&q_points),
        fit_exponent(&c_points)
    ));
    table
}

/// E8 — Appendix B.2 (Counting): distributed quantum counting versus
/// classical sampling.
#[must_use]
pub fn e8_star_counting() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E8 (Cor 4.3, App. B.2): counting on a star graph — quantum O(1/ε) vs classical Θ(1/ε²)",
        &[
            "ε",
            "quantum msgs",
            "classical msgs",
            "quantum estimate",
            "true count",
        ],
    );
    let n = 2000usize;
    let ones = 600usize;
    let inputs: Vec<bool> = (0..n).map(|i| i < ones).collect();
    let mut q_points = Vec::new();
    let mut c_points = Vec::new();
    for &eps in &[0.05f64, 0.02, 0.01, 0.005] {
        let quantum = quantum_star_count(&inputs, eps, 0.2, 3).expect("quantum star count");
        let classical = classical_star_count(&inputs, eps, 3).expect("classical star count");
        q_points.push((1.0 / eps, quantum.messages as f64));
        c_points.push((1.0 / eps, classical.messages as f64));
        table.push_row(vec![
            format!("{eps}"),
            quantum.messages.to_string(),
            classical.messages.to_string(),
            quantum.estimate.to_string(),
            ones.to_string(),
        ]);
    }
    table.push_note(format!(
        "fitted exponent in 1/ε: quantum {:.2} (paper: 1.0), classical {:.2} (paper: 2.0)",
        fit_exponent(&q_points),
        fit_exponent(&c_points)
    ));
    table
}

/// E9 — Section 1.2 ablation: the effect of the walk's subset size `k` on
/// `QuantumQWLE` (the `k + n/√k` shape; `k = 1` degenerates to nested Grover
/// searches without a walk database).
#[must_use]
pub fn e9_walk_ablation() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E9 (§1.2): QuantumQWLE ablation — walk subset size k on clique-of-cliques(10), n = 100",
        &["k", "messages", "effective rounds", "success"],
    );
    let graph = topology::clique_of_cliques(10).expect("clique of cliques");
    let n = graph.node_count();
    for &k in &[1usize, 4, 9, 18] {
        let protocol = QuantumQwLe {
            k: KChoice::Fixed(k),
            alpha: AlphaChoice::Fixed(0.25),
            iterations: Some((6.0 * (n as f64).ln()).ceil() as usize),
            activation_probability: Some(0.25),
            skip_full_topology_check: true,
        };
        let run = protocol.run(&graph, 5).expect("qwle run");
        table.push_row(vec![
            k.to_string(),
            run.cost.total_messages().to_string(),
            run.cost.effective_rounds.to_string(),
            run.succeeded().to_string(),
        ]);
    }
    table.push_note("small k (no useful walk database) forces the checking-heavy regime ~ n/√k; the paper's k = n^{2/3} balances Setup against the walk, the source of the n^{3/4} → n^{2/3} improvement discussed in §1.2");
    table
}

/// E10 — Fact C.2: candidate sampling produces between 1 and 24·ln n
/// candidates with distinct ranks, with probability ≥ 1 − 1/n².
#[must_use]
pub fn e10_candidate_sampling() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E10 (Fact C.2): candidate sampling — Monte-Carlo check",
        &[
            "n",
            "trials",
            "fraction satisfying Fact C.2",
            "mean candidates",
            "24·ln n",
        ],
    );
    for &n in &[64usize, 256, 1024, 4096] {
        let trials = 200u64;
        // Independent Monte-Carlo trials, one per seed: run them in parallel
        // and merge counts in seed order.
        let outcomes: Vec<(usize, bool)> = (0..trials)
            .into_par_iter()
            .map(|seed| {
                let candidates = sample_candidates_seeded(n, seed);
                (candidates.len(), satisfies_fact_c2(n, &candidates))
            })
            .collect();
        let satisfied = outcomes.iter().filter(|(_, ok)| *ok).count() as u64;
        let total_candidates: usize = outcomes.iter().map(|(len, _)| len).sum();
        table.push_row(vec![
            n.to_string(),
            trials.to_string(),
            format!("{:.3}", satisfied as f64 / trials as f64),
            format!("{:.1}", total_candidates as f64 / trials as f64),
            format!("{:.1}", 24.0 * (n as f64).ln()),
        ]);
    }
    table.push_note("the paper's bound is ≥ 1 − 1/n²; the empirical fraction should be ≈ 1.000");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full sweeps are exercised by the `experiments` binary and the
    // Criterion benches; the unit tests here only check the cheap experiments
    // end-to-end so the table plumbing stays correct.

    #[test]
    fn star_and_sampling_tables_have_expected_shape() {
        let e7 = e7_star_search();
        assert_eq!(e7.rows.len(), 4);
        assert!(e7.to_string().contains("fitted exponent"));
        let e10 = e10_candidate_sampling();
        assert_eq!(e10.rows.len(), 4);
        for row in &e10.rows {
            let fraction: f64 = row[2].parse().unwrap();
            assert!(fraction > 0.95);
        }
    }

    #[test]
    fn tradeoff_table_runs() {
        let e2 = e2_tradeoff();
        assert_eq!(e2.rows.len(), 4);
    }
}
