//! Plain-text experiment tables.

use std::fmt;

/// A printable experiment table: a title, a header row, data rows, and free
/// text notes (fitted exponents, paper references).
#[derive(Debug, Clone, Default)]
pub struct ExperimentTable {
    /// The experiment identifier and description.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed below the table.
    pub notes: Vec<String>,
}

impl ExperimentTable {
    /// Creates an empty table with the given title and header.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        ExperimentTable {
            title: title.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    fn column_widths(&self) -> Vec<usize> {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let widths = self.column_widths();
        let format_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(cell, width)| format!("{cell:>width$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", format_row(&self.header))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", format_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns_and_notes() {
        let mut table = ExperimentTable::new("E0: demo", &["n", "messages"]);
        table.push_row(vec!["64".into(), "1234".into()]);
        table.push_row(vec!["4096".into(), "9".into()]);
        table.push_note("fitted exponent 0.33");
        let text = table.to_string();
        assert!(text.contains("== E0: demo =="));
        assert!(text.contains("messages"));
        assert!(text.contains("note: fitted exponent 0.33"));
        assert!(text.lines().count() >= 5);
    }
}
