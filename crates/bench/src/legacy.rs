//! A frozen copy of the **pre-CSR** round engine, kept solely as the
//! baseline side of the `network_core` microbenchmark.
//!
//! This reproduces, faithfully and deliberately, the simulator data plane as
//! it existed before the CSR/zero-allocation refactor:
//!
//! * nested `Vec<Vec<NodeId>>` adjacency with `O(log deg)` binary-search
//!   port resolution on every delivered message,
//! * CONGEST enforcement through a `HashSet<(NodeId, NodeId)>` that is
//!   re-populated and cleared every round,
//! * a fresh inbox `Vec` taken from the network and a fresh outbox `Vec`
//!   allocated per node per round.
//!
//! Do **not** use this for anything but measurement: it exists so the
//! benchmark can report "old engine vs new engine" numbers on identical
//! workloads from a single binary, and so future sessions can re-verify the
//! speedup claim without digging through git history.

use std::collections::HashSet;

use congest_net::{Graph, NodeId, Port};

/// Nested-`Vec` adjacency as the seed's `Graph` stored it.
#[derive(Debug, Clone)]
pub struct LegacyGraph {
    adj: Vec<Vec<NodeId>>,
}

impl LegacyGraph {
    /// Copies a CSR graph into the legacy nested representation (port
    /// numbering is identical: neighbours sorted ascending).
    #[must_use]
    pub fn from_graph(graph: &Graph) -> Self {
        LegacyGraph {
            adj: (0..graph.node_count())
                .map(|v| graph.neighbors(v).to_vec())
                .collect(),
        }
    }

    fn node_count(&self) -> usize {
        self.adj.len()
    }

    fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    fn neighbor_through_port(&self, v: NodeId, p: Port) -> NodeId {
        self.adj[v][p]
    }

    fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.adj[v].binary_search(&u).ok()
    }
}

/// The seed's network loop, specialised to one-bit flood messages.
#[derive(Debug)]
pub struct LegacyNetwork {
    graph: LegacyGraph,
    pending: Vec<(NodeId, NodeId, bool)>,
    inboxes: Vec<Vec<(NodeId, bool)>>,
    dirty_inboxes: Vec<NodeId>,
    edges_used: HashSet<(NodeId, NodeId)>,
    messages: u64,
    rounds: u64,
}

impl LegacyNetwork {
    fn new(graph: LegacyGraph) -> Self {
        let n = graph.node_count();
        LegacyNetwork {
            graph,
            pending: Vec::new(),
            inboxes: vec![Vec::new(); n],
            dirty_inboxes: Vec::new(),
            edges_used: HashSet::new(),
            messages: 0,
            rounds: 0,
        }
    }

    fn send_through_port(&mut self, from: NodeId, port: Port, msg: bool) {
        let to = self.graph.neighbor_through_port(from, port);
        // The seed's CONGEST check: hash-set insert per directed edge.
        assert!(self.edges_used.insert((from, to)), "edge busy");
        self.messages += 1;
        self.pending.push((from, to, msg));
    }

    fn advance_round(&mut self) {
        for v in self.dirty_inboxes.drain(..) {
            self.inboxes[v].clear();
        }
        for (from, to, msg) in self.pending.drain(..) {
            if self.inboxes[to].is_empty() {
                self.dirty_inboxes.push(to);
            }
            self.inboxes[to].push((from, msg));
        }
        self.edges_used.clear();
        self.rounds += 1;
    }

    fn take_inbox(&mut self, v: NodeId) -> Vec<(NodeId, bool)> {
        std::mem::take(&mut self.inboxes[v])
    }
}

/// Runs the seed-era flood loop: per-node allocated outboxes, `take_inbox`
/// allocation churn, and binary-search arrival-port translation per message
/// (exactly the shape of the old `SyncRuntime::step`).
///
/// Returns `(rounds, messages)` — byte-identical to the modern engine's
/// counts on the same graph, which the determinism tests assert.
#[must_use]
pub fn run_flood(graph: &Graph, source: NodeId, max_rounds: u64) -> (u64, u64) {
    let legacy = LegacyGraph::from_graph(graph);
    let n = legacy.node_count();
    let mut net = LegacyNetwork::new(legacy);
    let mut has_token = vec![false; n];
    let mut announced = vec![false; n];

    // Start-up round.
    has_token[source] = true;
    {
        let mut outbox: Vec<(Port, bool)> = Vec::new();
        for port in 0..net.graph.degree(source) {
            outbox.push((port, true));
        }
        announced[source] = true;
        for (port, msg) in outbox {
            net.send_through_port(source, port, msg);
        }
    }
    net.advance_round();
    let mut round = 1;

    while round < max_rounds && !has_token.iter().all(|&t| t) {
        for v in 0..n {
            // Seed behaviour: every node takes (and reallocates) its inbox
            // and translates senders to ports by binary search.
            let inbox = net.take_inbox(v);
            let incoming: Vec<(Port, bool)> = inbox
                .into_iter()
                .filter_map(|(from, msg)| net.graph.port_to(v, from).map(|p| (p, msg)))
                .collect();
            let mut outbox: Vec<(Port, bool)> = Vec::new();
            if !has_token[v] && incoming.iter().any(|(_, t)| *t) {
                has_token[v] = true;
            }
            if has_token[v] && !announced[v] {
                for port in 0..net.graph.degree(v) {
                    outbox.push((port, true));
                }
                announced[v] = true;
            }
            for (port, msg) in outbox {
                net.send_through_port(v, port, msg);
            }
        }
        net.advance_round();
        round += 1;
    }
    (round, net.messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_net::programs::Flood;
    use congest_net::{topology, NetworkConfig, SyncRuntime};

    #[test]
    fn legacy_flood_matches_modern_engine() {
        for graph in [
            topology::cycle(24).unwrap(),
            topology::complete(12).unwrap(),
            topology::hypercube(4).unwrap(),
        ] {
            let (legacy_rounds, legacy_msgs) = run_flood(&graph, 0, 10_000);
            let mut runtime = SyncRuntime::new(graph, NetworkConfig::with_seed(0), |v, _| {
                Flood::new(v == 0)
            });
            let modern_rounds = runtime.run_until_halt(10_000).unwrap();
            assert_eq!(legacy_rounds, modern_rounds);
            assert_eq!(legacy_msgs, runtime.metrics().classical_messages);
        }
    }
}
