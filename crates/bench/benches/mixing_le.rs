//! E3 bench: `QuantumRWLE` vs the classical random-walk protocol on
//! small-mixing-time graphs.

use classical_baselines::KppMixingLe;
use congest_net::topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qle::algorithms::QuantumRwLe;
use qle::{AlphaChoice, KChoice, LeaderElection};

fn bench_mixing_le(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_mixing_le");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &dim in &[6u32, 8] {
        let graph = topology::hypercube(dim).unwrap();
        let tau = dim as usize;
        let quantum =
            QuantumRwLe::with_parameters(KChoice::Optimal, AlphaChoice::Fixed(0.25), Some(tau));
        let classical = KppMixingLe::with_tau(tau);
        group.bench_with_input(
            BenchmarkId::new("quantum_hypercube", graph.node_count()),
            &dim,
            |b, _| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    quantum.run(&graph, seed).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classical_hypercube", graph.node_count()),
            &dim,
            |b, _| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    classical.run(&graph, seed).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mixing_le);
criterion_main!(benches);
