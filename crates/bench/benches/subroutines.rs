//! E7/E8 bench: the star-graph searching and counting primitives (quantum vs
//! classical).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qle::star::{
    classical_star_count, classical_star_search, quantum_star_count, quantum_star_search,
};

fn bench_star_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_star_search");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[1024usize, 4096] {
        let inputs: Vec<bool> = (0..n).map(|i| i == n / 2).collect();
        group.bench_with_input(BenchmarkId::new("quantum", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                quantum_star_search(&inputs, 1, 0.1, seed).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("classical", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                classical_star_search(&inputs, seed).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_star_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_star_counting");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 2000usize;
    let inputs: Vec<bool> = (0..n).map(|i| i < 600).collect();
    for &eps in &[0.02f64, 0.01] {
        group.bench_with_input(
            BenchmarkId::new("quantum", format!("eps_{eps}")),
            &eps,
            |b, _| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    quantum_star_count(&inputs, eps, 0.2, seed).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classical", format!("eps_{eps}")),
            &eps,
            |b, _| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    classical_star_count(&inputs, eps, seed).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_star_search, bench_star_counting);
criterion_main!(benches);
