//! E6 bench: `QuantumAgreement` vs the classical AMP18 shared-coin protocol.

use classical_baselines::{AmpSharedCoinAgreement, PrivateCoinAgreement};
use congest_net::topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qle::algorithms::QuantumAgreement;
use qle::{Agreement, AlphaChoice};

fn bench_agreement(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_agreement");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[64usize, 256] {
        let graph = topology::complete(n).unwrap();
        let inputs: Vec<bool> = (0..n).map(|i| i % 10 < 3).collect();
        let quantum = QuantumAgreement::with_parameters(None, None, AlphaChoice::Fixed(0.25));
        let amp = AmpSharedCoinAgreement::new();
        let private = PrivateCoinAgreement::new();
        group.bench_with_input(BenchmarkId::new("quantum", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                quantum.run(&graph, &inputs, seed).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("amp_shared_coin", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                amp.run(&graph, &inputs, seed).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("private_coin", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                private.run(&graph, &inputs, seed).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_agreement);
criterion_main!(benches);
