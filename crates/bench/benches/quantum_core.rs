//! State-vector kernel microbenchmark: the SoA amplitude kernels against the
//! frozen pre-refactor scalar implementation, on identical workloads.
//!
//! The four kernels mirror `quantum_bench::measure_all`: phase oracle (with
//! a branch-hostile scrambled marked set), Grover diffusion, complex inner
//! product, and cached-CDF sampling. The acceptance target for the SoA
//! refactor is an aggregate ≥ 1.3× over `legacy` on the CI container
//! (enforced by `experiments --bench-quantum`, which writes
//! `BENCH_quantum.json`; this bench is for interactive profiling).
//!
//! Run with `cargo bench --bench quantum_core`.

use bench_harness::legacy_quantum::LegacyStateVector;
use bench_harness::quantum_bench::{base_amplitudes, bench_oracle, SAMPLE_DRAWS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quantum_sim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIMS: [usize; 3] = [1 << 12, 1 << 16, 1 << 20];

fn bench_oracle_diffusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("grover_step");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &dim in &DIMS {
        let amps = base_amplitudes(dim);
        let mut soa = StateVector::from_amplitudes(amps.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("soa", dim), &dim, |b, _| {
            b.iter(|| {
                soa.apply_phase_oracle(bench_oracle);
                soa.apply_diffusion();
            });
        });
        let mut legacy = LegacyStateVector::from_amplitudes(amps);
        group.bench_with_input(BenchmarkId::new("legacy", dim), &dim, |b, _| {
            b.iter(|| {
                legacy.apply_phase_oracle(bench_oracle);
                legacy.apply_diffusion();
            });
        });
    }
    group.finish();
}

fn bench_inner_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_product");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &dim in &DIMS {
        let amps = base_amplitudes(dim);
        let other: Vec<_> = amps.iter().rev().copied().collect();
        let soa = StateVector::from_amplitudes(amps.clone()).unwrap();
        let soa_other = StateVector::from_amplitudes(other.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("soa", dim), &dim, |b, _| {
            b.iter(|| soa.inner_product(&soa_other).unwrap());
        });
        let legacy = LegacyStateVector::from_amplitudes(amps);
        let legacy_other = LegacyStateVector::from_amplitudes(other);
        group.bench_with_input(BenchmarkId::new("legacy", dim), &dim, |b, _| {
            b.iter(|| legacy.inner_product(&legacy_other));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &dim in &DIMS {
        let amps = base_amplitudes(dim);
        let soa = StateVector::from_amplitudes(amps.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("soa", dim), &dim, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(42);
                soa.sample_many(SAMPLE_DRAWS, &mut rng)
            });
        });
        let legacy = LegacyStateVector::from_amplitudes(amps);
        group.bench_with_input(BenchmarkId::new("legacy", dim), &dim, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(42);
                legacy.sample_many(SAMPLE_DRAWS, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_oracle_diffusion,
    bench_inner_product,
    bench_sampling
);
criterion_main!(benches);
