//! Round-engine microbenchmark: the CSR / zero-allocation data plane against
//! the frozen pre-refactor engine, on pure-flood loads, plus GHS as a real
//! protocol load.
//!
//! Flood is the canonical round-engine probe: messages are one bit, so all
//! measured time is simulator overhead (send path, CONGEST enforcement,
//! delivery, arrival-port resolution, buffer management). The acceptance
//! target for the CSR refactor is ≥ 3× flood throughput over `legacy`.
//!
//! Run with `cargo bench --bench network_core`; machine-readable numbers for
//! the same workloads come from `experiments --bench-network`, which writes
//! `BENCH_network.json`.

use bench_harness::network_bench::{
    flood_legacy, flood_modern, flood_sharded, ghs_modern, standard_topologies, BENCH_SHARDS,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_flood_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("flood_round_engine");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let sharded = format!("csr-mt{BENCH_SHARDS}");
    for &n in &[1024usize, 4096] {
        for (label, graph) in standard_topologies(n) {
            group.bench_with_input(BenchmarkId::new("csr", &label), &graph, |b, g| {
                b.iter(|| flood_modern(g));
            });
            group.bench_with_input(BenchmarkId::new(&sharded, &label), &graph, |b, g| {
                b.iter(|| flood_sharded(g, BENCH_SHARDS));
            });
            group.bench_with_input(BenchmarkId::new("legacy", &label), &graph, |b, g| {
                b.iter(|| flood_legacy(g));
            });
        }
    }
    group.finish();
}

fn bench_ghs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghs_round_engine");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[256usize, 1024] {
        for (label, graph) in standard_topologies(n) {
            group.bench_with_input(BenchmarkId::new("csr", &label), &graph, |b, g| {
                b.iter(|| ghs_modern(g, 1));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flood_engines, bench_ghs);
criterion_main!(benches);
