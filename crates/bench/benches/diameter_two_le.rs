//! E4 bench: `QuantumQWLE` vs the classical `Õ(n)` protocol on diameter-2
//! graphs.

use classical_baselines::CprDiameterTwoLe;
use congest_net::topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qle::algorithms::QuantumQwLe;
use qle::LeaderElection;

fn bench_diameter_two(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_diameter_two_le");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &side in &[6usize, 8] {
        let graph = topology::clique_of_cliques(side).unwrap();
        let n = graph.node_count();
        let quantum = QuantumQwLe::benchmark_profile(n);
        let classical = CprDiameterTwoLe {
            skip_full_topology_check: true,
        };
        group.bench_with_input(BenchmarkId::new("quantum", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                quantum.run(&graph, seed).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("classical", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                classical.run(&graph, seed).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diameter_two);
criterion_main!(benches);
