//! E2 bench: the round/message trade-off of `QuantumLE` in the parameter `k`.

use congest_net::topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qle::algorithms::QuantumLe;
use qle::{AlphaChoice, KChoice, LeaderElection};

fn bench_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_tradeoff");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let graph = topology::complete(256).unwrap();
    for &exponent in &[0.25f64, 1.0 / 3.0, 0.5] {
        let protocol =
            QuantumLe::with_parameters(KChoice::Exponent(exponent), AlphaChoice::Fixed(0.25));
        group.bench_with_input(
            BenchmarkId::new("k_exponent", format!("{exponent:.2}")),
            &exponent,
            |b, _| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    protocol.run(&graph, seed).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tradeoff);
criterion_main!(benches);
