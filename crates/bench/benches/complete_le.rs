//! E1 bench: `QuantumLE` vs the classical `Õ(√n)` protocol on complete graphs.

use classical_baselines::KppCompleteLe;
use congest_net::topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qle::algorithms::QuantumLe;
use qle::{AlphaChoice, KChoice, LeaderElection};

fn bench_complete_le(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_complete_le");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[128usize, 512] {
        let graph = topology::complete(n).unwrap();
        let quantum = QuantumLe::with_parameters(KChoice::Optimal, AlphaChoice::Fixed(0.25));
        let classical = KppCompleteLe::new();
        group.bench_with_input(BenchmarkId::new("quantum", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                quantum.run(&graph, seed).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("classical", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                classical.run(&graph, seed).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_complete_le);
criterion_main!(benches);
