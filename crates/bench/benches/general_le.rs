//! E5 bench: `QuantumGeneralLE` vs the classical GHS-style protocol on
//! arbitrary graphs.

use classical_baselines::GhsLe;
use congest_net::topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qle::algorithms::QuantumGeneralLe;
use qle::{AlphaChoice, LeaderElection};

fn bench_general_le(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_general_le");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[64usize, 128] {
        let graph = topology::erdos_renyi_connected(n, 8.0 / n as f64, 17).unwrap();
        let quantum = QuantumGeneralLe::with_alpha(AlphaChoice::Fixed(0.3));
        let classical = GhsLe::new();
        group.bench_with_input(BenchmarkId::new("quantum", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                quantum.run(&graph, seed).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("classical", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                classical.run(&graph, seed).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_general_le);
criterion_main!(benches);
