//! E9 bench: ablation of the quantum-walk subset size k in `QuantumQWLE`.

use congest_net::topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qle::algorithms::QuantumQwLe;
use qle::{AlphaChoice, KChoice, LeaderElection};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_walk_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let graph = topology::clique_of_cliques(8).unwrap();
    let n = graph.node_count();
    for &k in &[1usize, 8] {
        let protocol = QuantumQwLe {
            k: KChoice::Fixed(k),
            alpha: AlphaChoice::Fixed(0.25),
            iterations: Some((6.0 * (n as f64).ln()).ceil() as usize),
            activation_probability: Some(0.25),
            skip_full_topology_check: true,
        };
        group.bench_with_input(BenchmarkId::new("subset_size", k), &k, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                protocol.run(&graph, seed).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
