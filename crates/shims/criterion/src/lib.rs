//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! small wall-clock benchmarking harness behind the familiar criterion
//! surface: [`Criterion::benchmark_group`], group `sample_size` /
//! `warm_up_time` / `measurement_time`, [`BenchmarkGroup::bench_with_input`]
//! and [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark reports the median, minimum, and maximum per-iteration
//! wall-clock time over `sample_size` samples. A substring filter can be
//! passed on the command line exactly as with criterion proper:
//! `cargo bench --bench network_core -- flood`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver: holds the CLI filter and collected results.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
    results: Vec<SampleSummary>,
}

/// One benchmark's summarised timing, also consumable by callers that want
/// machine-readable output.
#[derive(Debug, Clone)]
pub struct SampleSummary {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
}

impl Criterion {
    /// Builds a `Criterion` from command-line arguments, honouring a
    /// substring filter and ignoring harness flags passed by `cargo bench`.
    #[must_use]
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            filter,
            results: Vec::new(),
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_with_input(BenchmarkId::from_parameter(""), &(), {
            let mut f = f;
            move |b, ()| f(b)
        });
        group.finish();
        self
    }

    /// All results recorded so far (used by `criterion_main!` for the final
    /// summary, and by binaries that export machine-readable output).
    #[must_use]
    pub fn results(&self) -> &[SampleSummary] {
        &self.results
    }

    /// Prints a one-line-per-benchmark summary.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            println!("no benchmarks matched the filter");
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = if id.id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let summary = run_benchmark(
            &full_id,
            self.sample_size,
            self.warm_up,
            self.measurement,
            |b| {
                f(b, input);
            },
        );
        self.criterion.results.push(summary);
        self
    }

    /// Benchmarks a function with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id.into(), &(), move |b, ()| f(b))
    }

    /// Ends the group (reports are emitted as benchmarks run).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`; the harness picks `iters` so each
    /// sample is long enough to measure reliably.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut routine: impl FnMut(&mut Bencher),
) -> SampleSummary {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // estimating the per-iteration cost as we go.
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    let mut warm_runs = 0u32;
    while warm_start.elapsed() < warm_up || warm_runs < 1 {
        routine(&mut one);
        per_iter = one.elapsed.max(Duration::from_nanos(1));
        warm_runs += 1;
    }
    // Pick iterations per sample to fill measurement_time / sample_size.
    let per_sample_budget = measurement / sample_size as u32;
    let iters =
        (per_sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort_unstable();
    let summary = SampleSummary {
        id: id.to_string(),
        median: samples[samples.len() / 2],
        min: samples[0],
        max: samples[samples.len() - 1],
        iters_per_sample: iters,
    };
    println!(
        "{:<50} time: [{:>12?} {:>12?} {:>12?}]  ({} iters/sample)",
        summary.id, summary.min, summary.median, summary.max, iters
    );
    summary
}

/// Declares a benchmark group function, as in criterion proper.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion proper.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(6));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            // `black_box` on the loop variable keeps LLVM from const-folding
            // (or closed-forming) the whole workload to a constant, which
            // would legitimately measure 0ns per iteration and fail the
            // median assertion below on hosts with a coarse monotonic clock.
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..n {
                    acc = acc
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(black_box(i));
                }
                acc
            });
        });
        group.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].id.contains("shim/sum/100"));
        assert!(c.results()[0].median.as_nanos() > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, ()| b.iter(|| 1 + 1));
        group.finish();
        assert!(c.results().is_empty());
    }
}
