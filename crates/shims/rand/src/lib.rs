//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, self-contained implementation of the
//! `rand 0.8` surface it needs: [`RngCore`], [`SeedableRng`], [`Rng`]
//! (with `gen`, `gen_bool`, `gen_range`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! [`rngs::StdRng`] here is xoshiro256++ seeded through SplitMix64 rather
//! than ChaCha12, so the *streams differ from upstream `rand`*, but every
//! property the workspace relies on holds: seeding is deterministic, distinct
//! seeds give independent-looking streams, and all distributions are
//! uniform. Determinism regression tests in this repository pin golden values
//! produced by this generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 — the
    /// standard way this workspace derives per-node streams from one master
    /// seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from raw generator output (the shim's analogue
/// of `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open or inclusive range from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiplication with rejection
/// (Lemire's method), bias-free.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::sample(self) < p
    }

    /// Draws a uniform value from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12),
    /// but deterministic, seedable, fast, and of more than sufficient quality
    /// for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_below, Rng};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(23);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
