//! A persistent worker pool with scoped execution of borrowed closures.
//!
//! The pool is the one place in the workspace's offline shims that uses
//! `unsafe`: scoped execution hands worker threads raw pointers to closures
//! living on the caller's stack, exactly like upstream `rayon` does. The
//! soundness argument is short and local:
//!
//! * [`ThreadPool::scope_execute`] **never returns before every task of its
//!   batch has completed** — including when a task (or the inline task)
//!   panics — so the erased `&mut` borrows cannot outlive the frame that
//!   owns them.
//! * Each task pointer is derived from a distinct `&mut` in the caller's
//!   slice, so no two threads ever alias the same closure.
//! * Workers touch a batch's `Latch` only *before* releasing its mutex in
//!   `Latch::complete`; the caller cannot observe `remaining == 0` (and
//!   thus free the latch) until that mutex is released.
//!
//! Waiting callers *help*: while their batch is outstanding they pop and run
//! queued tasks instead of blocking, so nested scopes (a task that itself
//! calls [`ThreadPool::scope_execute`] or [`join`]) cannot deadlock even
//! when every worker is busy — the 200 µs re-check below bounds the window
//! in which a queued task can sit unnoticed.
//!
//! Workers are spawned once, on first use, and live for the process
//! lifetime; per-batch dispatch is a queue push + condvar notify, so a
//! caller that dispatches every few hundred microseconds (the sharded round
//! engine in `congest-net`) pays no thread-spawn cost.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Completion latch for one `scope_execute` batch. Lives on the caller's
/// stack; workers reach it through a raw pointer that stays valid because
/// the caller never returns before the count reaches zero.
struct Latch {
    state: Mutex<LatchState>,
    completed: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<PanicPayload>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            completed: Condvar::new(),
        }
    }

    /// Marks one task of the batch as finished (recording the first panic,
    /// if any). The condvar is notified while the lock is still held: the
    /// caller can only observe `remaining == 0` after this thread has
    /// released the mutex, at which point the latch is never touched again.
    fn complete(&self, panic: Option<PanicPayload>) {
        let mut state = self.state.lock().expect("latch poisoned");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.completed.notify_all();
        }
    }
}

/// A lifetime-erased task: a pointer to a closure in some live
/// `scope_execute` frame, plus the latch that frame is waiting on.
struct Task {
    func: *mut (dyn FnMut() + Send),
    latch: *const Latch,
}

// SAFETY: the pointee closure is `Send` (enforced by the public signatures),
// each pointer is consumed by exactly one thread, and `scope_execute` keeps
// both pointees alive until the latch reports completion.
unsafe impl Send for Task {}

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
}

/// Runs one task and reports its completion (and any panic) to its latch.
fn execute(task: Task) {
    // SAFETY: `func` points into a live `scope_execute` frame (that frame is
    // blocked in `wait_helping` until we call `complete`), and this thread
    // is the only one holding this pointer.
    let func = unsafe { &mut *task.func };
    let result = catch_unwind(AssertUnwindSafe(func));
    // SAFETY: same frame-liveness argument as above.
    let latch = unsafe { &*task.latch };
    latch.complete(result.err());
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        execute(task);
    }
}

/// A persistent pool of worker threads executing scoped task batches.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    fn new() -> Self {
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn rayon shim worker");
        }
        ThreadPool { shared, threads }
    }

    /// Number of worker threads in this pool.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Runs every closure in `tasks` to completion, distributing them over
    /// the pool's workers, and returns only once all of them have finished.
    /// The first closure runs inline on the calling thread (so a singleton
    /// batch costs nothing); the rest are queued for workers, and the caller
    /// helps drain the queue while it waits. Panics from any task are
    /// re-raised here after the whole batch has completed.
    ///
    /// Taking a slice of concrete closures (trait-object erasure happens
    /// internally) means callers dispatch a `Vec` of closures directly —
    /// no per-call `Vec<&mut dyn FnMut>` staging.
    pub fn scope_execute_batch<F: FnMut() + Send>(&self, tasks: &mut [F]) {
        let Some((first, rest)) = tasks.split_first_mut() else {
            return;
        };
        if rest.is_empty() {
            first();
            return;
        }
        let latch = Latch::new(rest.len());
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for task in rest.iter_mut() {
                let task: &mut (dyn FnMut() + Send) = task;
                // SAFETY (lifetime erasure): the pointer is only dereferenced
                // by `execute`, and `wait_helping` below does not return until
                // every task of this batch has called `Latch::complete` — so
                // the borrow cannot outlive this frame even on panic.
                let func = unsafe {
                    std::mem::transmute::<
                        &mut (dyn FnMut() + Send),
                        &'static mut (dyn FnMut() + Send),
                    >(task)
                };
                queue.push_back(Task {
                    func,
                    latch: &latch,
                });
            }
        }
        self.shared.available.notify_all();
        let inline = catch_unwind(AssertUnwindSafe(first));
        self.wait_helping(&latch);
        let queued_panic = latch.state.lock().expect("latch poisoned").panic.take();
        if let Err(payload) = inline {
            resume_unwind(payload);
        }
        if let Some(payload) = queued_panic {
            resume_unwind(payload);
        }
    }

    /// [`scope_execute_batch`](ThreadPool::scope_execute_batch) over
    /// already-erased trait objects, for heterogeneous batches.
    pub fn scope_execute(&self, tasks: &mut [&mut (dyn FnMut() + Send)]) {
        self.scope_execute_batch(tasks);
    }

    /// Blocks until `latch` reports completion, executing queued tasks (of
    /// any batch) in the meantime so that nested scopes make progress even
    /// with every worker occupied.
    fn wait_helping(&self, latch: &Latch) {
        loop {
            if latch.state.lock().expect("latch poisoned").remaining == 0 {
                return;
            }
            let stolen = self
                .shared
                .queue
                .lock()
                .expect("pool queue poisoned")
                .pop_front();
            if let Some(task) = stolen {
                execute(task);
                continue;
            }
            let state = latch.state.lock().expect("latch poisoned");
            if state.remaining != 0 {
                // Re-check the queue periodically: a nested scope may have
                // enqueued work between our steal attempt and this wait.
                let _ = latch
                    .completed
                    .wait_timeout(state, Duration::from_micros(200));
            }
        }
    }
}

/// The process-wide pool, spawned lazily on first use. Thread count is
/// `RAYON_NUM_THREADS` if set (matching upstream rayon), otherwise the
/// available parallelism.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::new)
}

/// Runs `oper_a` and `oper_b` potentially in parallel and returns both
/// results, like `rayon::join`. One closure runs inline on the calling
/// thread; the other is offered to the pool.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut a = Some(oper_a);
    let mut b = Some(oper_b);
    let mut result_a = None;
    let mut result_b = None;
    {
        let mut run_a = || result_a = Some((a.take().expect("join task ran twice"))());
        let mut run_b = || result_b = Some((b.take().expect("join task ran twice"))());
        global().scope_execute(&mut [&mut run_a, &mut run_b]);
    }
    (
        result_a.expect("join task a did not run"),
        result_b.expect("join task b did not run"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_execute_batch_runs_every_task_with_borrows() {
        let mut slots = vec![0u64; 16];
        {
            let mut tasks: Vec<_> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| move || *slot = i as u64 + 1)
                .collect();
            global().scope_execute_batch(&mut tasks);
        }
        assert_eq!(slots, (1..=16).collect::<Vec<u64>>());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "hi".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn nested_scopes_complete() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let mut outer: Vec<_> = (0..4)
            .map(|_| {
                move || {
                    let (x, y) = join(
                        || counter_ref.fetch_add(1, Ordering::Relaxed),
                        || counter_ref.fetch_add(1, Ordering::Relaxed),
                    );
                    let _ = (x, y);
                }
            })
            .collect();
        global().scope_execute_batch(&mut outer);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panics_propagate_after_batch_completes() {
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut ok1 = || {
                finished.fetch_add(1, Ordering::Relaxed);
            };
            let mut boom = || panic!("task panic");
            let mut ok2 = || {
                finished.fetch_add(1, Ordering::Relaxed);
            };
            global().scope_execute(&mut [&mut ok1, &mut boom, &mut ok2]);
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 2);
    }
}
