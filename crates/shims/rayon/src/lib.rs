//! Offline drop-in replacement for the subset of the `rayon` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! `par_iter` / `into_par_iter` with `map` / `for_each` / `collect` over
//! slices, `Vec`s, and integer ranges, plus [`join`] — all executed on a
//! **persistent worker pool** ([`pool`]) spawned once per process, so
//! high-frequency callers (the sharded round engine in `congest-net`
//! dispatches a batch every simulated round) pay a queue push instead of an
//! OS thread spawn. Results are always merged **in input order**, so
//! parallel sweeps are deterministic: a seed-indexed map produces
//! byte-identical output to its sequential counterpart.
//!
//! This is not work-stealing rayon — chunks are static — but for the
//! embarrassingly-parallel, per-seed protocol sweeps in `bench` the static
//! split is within noise of optimal, and the near-zero-dependency
//! implementation keeps the workspace buildable offline. The only `unsafe`
//! in the shim is the scoped lifetime erasure inside [`pool`], with the
//! soundness argument documented there.

#![deny(unsafe_code)]

use std::ops::Range;

pub mod pool;

pub use pool::{join, ThreadPool};

/// Re-exports matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads used for parallel execution (the persistent
/// pool's size: `RAYON_NUM_THREADS` if set, otherwise the available
/// parallelism).
#[must_use]
pub fn current_num_threads() -> usize {
    pool::global().thread_count()
}

/// An eager parallel iterator over an owned list of items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion of an owned collection into a [`ParIter`].
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(usize, u64, u32, i32, i64);

/// Conversion of a borrowed collection into a [`ParIter`] of references.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a reference).
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _: Vec<()> = ParMap {
            items: self.items,
            f: |t| f(t),
        }
        .collect();
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Collections constructible from ordered parallel results.
pub trait FromParallelIterator<R>: Sized {
    /// Builds the collection from results in input order.
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Executes the map on scoped threads and collects results in input
    /// order (deterministic regardless of thread scheduling).
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(self.run())
    }

    fn run(self) -> Vec<R> {
        let ParMap { mut items, f } = self;
        let n = items.len();
        let workers = current_num_threads().min(n.max(1));
        if workers <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Static split into `workers` contiguous chunks; each chunk maps into
        // its own result slot, so reassembling the slots in slot order
        // restores input order exactly regardless of execution order.
        let chunk_size = n.div_ceil(workers);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        while !items.is_empty() {
            let tail = items.split_off(items.len().saturating_sub(chunk_size));
            chunks.push(tail);
        }
        chunks.reverse(); // split_off peeled chunks from the back
        let f = &f;
        let mut slots: Vec<Vec<R>> = (0..chunks.len()).map(|_| Vec::new()).collect();
        {
            let mut tasks: Vec<_> = chunks
                .into_iter()
                .zip(slots.iter_mut())
                .map(|(mut chunk, slot)| move || *slot = chunk.drain(..).map(f).collect::<Vec<R>>())
                .collect();
            pool::global().scope_execute_batch(&mut tasks);
        }
        slots.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let expected: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        assert_eq!(doubled.len(), 100);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn for_each_runs_on_all_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0usize..257).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }
}
