//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `proptest!` macro for tests whose arguments are drawn from integer
//! range strategies (`lo..hi`), plus `prop_assert!` / `prop_assert_eq!` and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike proptest proper there is no shrinking: a failing case panics with
//! the sampled arguments in the message, which for the integer-range
//! strategies used here is enough to reproduce by hand. Sampling is
//! deterministic per test (seeded from the test's name), so failures are
//! reproducible across runs.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values for test arguments.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value, advancing the SplitMix64 `state`.
    fn sample(&self, state: &mut u64) -> Self::Value;
}

/// One SplitMix64 step — the shim's only randomness primitive.
#[must_use]
pub fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a string, used to give each test its own stream.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, state: &mut u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (next_u64(state) % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests whose arguments are drawn from range strategies.
///
/// Supports the form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(n in 8usize..48, seed in 0u64..500) {
///         prop_assert!(n >= 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __state: u64 = $crate::fnv1a(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __state);)+
                    let __case_args = format!(
                        concat!("case ", "{}", $(", ", stringify!($arg), " = {:?}",)+),
                        __case $(, $arg)+
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = __result {
                        eprintln!("proptest failure in {} ({})", stringify!($name), __case_args);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled values respect their range bounds.
        #[test]
        fn samples_are_in_range(n in 8usize..48, seed in 0u64..500) {
            prop_assert!((8..48).contains(&n));
            prop_assert!(seed < 500);
        }
    }

    proptest! {
        /// The default configuration also works.
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let mut a = crate::fnv1a("test_a");
        let mut b = crate::fnv1a("test_b");
        assert_ne!(crate::next_u64(&mut a), crate::next_u64(&mut b));
    }
}
