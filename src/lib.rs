//! Workspace façade crate for the reproduction of *Quantum Communication
//! Advantage for Leader Election and Agreement* (Dufoulon–Magniez–Pandurangan,
//! PODC 2025).
//!
//! This crate exists so the repository-level integration tests (`tests/`)
//! and examples (`examples/`) have a package to hang off; the substance
//! lives in the member crates, re-exported here for convenience:
//!
//! * [`congest_net`] — the metered CONGEST simulator (CSR graph core,
//!   zero-allocation round engine, random-walk machinery, topologies),
//! * [`quantum_sim`] — analytic and state-vector quantum subroutine engines,
//! * [`qle`] — the paper's five quantum leader-election protocols and the
//!   quantum agreement protocol,
//! * [`classical_baselines`] — the classical comparators,
//! * [`bench_harness`] — the E1–E10 experiment suite.

#![forbid(unsafe_code)]

pub use bench_harness;
pub use classical_baselines;
pub use congest_net;
pub use qle;
pub use quantum_sim;
