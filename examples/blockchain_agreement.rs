//! A committee-agreement scenario in the style of blockchain sharding: a
//! fully-connected committee of validators must agree on whether to accept a
//! block, given each validator's local verdict, with as little communication
//! as possible. With a common random beacon (shared randomness), the paper's
//! `QuantumAgreement` solves this with Õ(n^(1/5)) expected messages versus
//! the classical Õ(n^(2/5)).
//!
//! Run with: `cargo run --release --example blockchain_agreement`

use classical_baselines::{AmpSharedCoinAgreement, PrivateCoinAgreement};
use congest_net::topology;
use qle::algorithms::QuantumAgreement;
use qle::{Agreement, AlphaChoice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let validators = 512;
    let graph = topology::complete(validators)?;
    // 70% of the validators verified the block successfully.
    let verdicts: Vec<bool> = (0..validators).map(|i| i % 10 < 7).collect();

    println!("Committee agreement among {validators} validators (70% vote to accept)\n");
    let protocols: Vec<Box<dyn Agreement>> = vec![
        Box::new(QuantumAgreement::with_parameters(
            None,
            None,
            AlphaChoice::Fixed(0.25),
        )),
        Box::new(AmpSharedCoinAgreement::new()),
        Box::new(PrivateCoinAgreement::new()),
    ];
    println!(
        "{:<40} {:>10} {:>9} {:>8} {:>8}",
        "protocol", "messages", "decided", "value", "valid"
    );
    for protocol in protocols {
        let run = protocol.run(&graph, &verdicts, 4242)?;
        println!(
            "{:<40} {:>10} {:>9} {:>8?} {:>8}",
            protocol.name(),
            run.cost.total_messages(),
            run.outcome.decided_count(),
            run.outcome.agreed_value(),
            run.succeeded(),
        );
    }
    println!("\nImplicit agreement only requires the decided validators to agree on a value");
    println!("that was somebody's input; the undecided ones can learn it on demand.");
    Ok(())
}
