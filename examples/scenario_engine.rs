//! Scenario-engine quickstart: build a declarative workload matrix with the
//! typed builder, inject faults, run it, and verify deterministic replay.
//!
//! ```text
//! cargo run --release --example scenario_engine
//! ```
//!
//! The same matrix can live on disk as a `.scn` spec (see
//! `examples/scenarios/`) and be driven by the CLI:
//!
//! ```text
//! cargo run --release -p bench-harness --bin experiments -- --scenarios examples/scenarios
//! ```

use congest_net::topology::Family;
use congest_net::FaultPlan;
use sim_harness::{results_table, run_matrix, trace, ProtocolKind, ScenarioSpec};

fn main() {
    // A small matrix: flooding under two fault regimes, plus a fault-free
    // quantum leader election for comparison.
    let lossy = FaultPlan::new(7).drop_probability(0.08);
    let partitioned = FaultPlan::new(11)
        .link_outage(0, 1, 0, 5)
        .crash(9, 2)
        .crash(20, 3);
    let specs = vec![
        ScenarioSpec::new("flood-torus", Family::Torus, ProtocolKind::Flood)
            .sizes([64, 100])
            .seeds([1, 2])
            .max_rounds(500),
        ScenarioSpec::new("flood-torus-lossy", Family::Torus, ProtocolKind::Flood)
            .sizes([64])
            .seeds([1, 2])
            .max_rounds(500)
            .faults(lossy),
        ScenarioSpec::new(
            "flood-torus-partitioned",
            Family::Torus,
            ProtocolKind::Flood,
        )
        .sizes([64])
        .seeds([1])
        .max_rounds(500)
        .faults(partitioned),
        ScenarioSpec::new("quantum-le", Family::Complete, ProtocolKind::QuantumLe)
            .sizes([32])
            .seeds([1, 2]),
    ];

    let results = run_matrix(&specs).expect("matrix runs");
    println!("{}", results_table(&results));

    // Replay: serialize the trace, re-run the matrix, compare byte-for-byte.
    let baseline = trace::parse(&trace::serialize(&results)).expect("trace round-trips");
    let replayed = run_matrix(&specs).expect("replay runs");
    let mismatches = trace::compare(&replayed, &baseline);
    assert!(mismatches.is_empty(), "replay diverged: {mismatches:?}");
    println!(
        "replay OK: {} cells byte-identical (drops and crashes included)",
        replayed.len()
    );

    // Round-stamped fault events are available per cell for deeper analysis.
    let faulty = results
        .iter()
        .find(|r| !r.outcome.trace.is_empty())
        .expect("a faulty cell recorded events");
    println!(
        "\nfirst faulty cell ({}) recorded {} events; first: {:?}",
        faulty.cell.id(),
        faulty.outcome.trace.len(),
        faulty.outcome.trace[0]
    );
}
