//! Runs the appropriate quantum leader-election protocol of the paper on each
//! of its three network classes (complete, diameter-2, arbitrary) next to the
//! matching classical baseline, reproducing the headline comparison of
//! Section 1.2 at a single network size.
//!
//! Run with: `cargo run --release --example topology_comparison`

use classical_baselines::{CprDiameterTwoLe, GhsLe, KppCompleteLe};
use congest_net::topology;
use qle::algorithms::{QuantumGeneralLe, QuantumLe, QuantumQwLe};
use qle::{AlphaChoice, KChoice, LeaderElection};

fn report(
    label: &str,
    graph: &congest_net::Graph,
    quantum: &dyn LeaderElection,
    classical: &dyn LeaderElection,
) {
    println!(
        "{label}: n = {}, m = {}",
        graph.node_count(),
        graph.edge_count()
    );
    for protocol in [quantum, classical] {
        match protocol.run(graph, 11) {
            Ok(run) => println!(
                "  {:<34} {:>9} messages, {:>9} rounds, valid: {}",
                protocol.name(),
                run.cost.total_messages(),
                run.cost.effective_rounds,
                run.succeeded()
            ),
            Err(e) => println!("  {:<34} failed: {e}", protocol.name()),
        }
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Leader election across the paper's network classes\n");

    let complete = topology::complete(256)?;
    report(
        "Complete graph (diameter 1)",
        &complete,
        &QuantumLe::with_parameters(KChoice::Optimal, AlphaChoice::Fixed(0.25)),
        &KppCompleteLe::new(),
    );

    let diameter_two = topology::clique_of_cliques(10)?;
    report(
        "Clique-of-cliques (diameter 2)",
        &diameter_two,
        &QuantumQwLe::benchmark_profile(diameter_two.node_count()),
        &CprDiameterTwoLe {
            skip_full_topology_check: true,
        },
    );

    let general = topology::erdos_renyi_connected(128, 8.0 / 128.0, 5)?;
    report(
        "Erdős–Rényi graph (arbitrary diameter)",
        &general,
        &QuantumGeneralLe::with_alpha(AlphaChoice::Fixed(0.3)),
        &GhsLe::new(),
    );

    println!("Paper bounds: Õ(n^(1/3)) vs Θ̃(√n) on complete graphs, Õ(n^(2/3)) vs Θ(n) on");
    println!("diameter-2 graphs, and Õ(√(mn)) vs Ω(m) on general graphs (Section 1.2).");
    Ok(())
}
