//! Quickstart: elect a leader on a complete network with the paper's
//! `QuantumLE` protocol and compare it against the classical baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use classical_baselines::KppCompleteLe;
use congest_net::topology;
use qle::algorithms::QuantumLe;
use qle::{AlphaChoice, KChoice, LeaderElection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let graph = topology::complete(n)?;

    println!("Leader election on the complete graph K_{n}\n");
    for protocol in [
        Box::new(QuantumLe::with_parameters(
            KChoice::Optimal,
            AlphaChoice::Fixed(0.25),
        )) as Box<dyn LeaderElection>,
        Box::new(KppCompleteLe::new()) as Box<dyn LeaderElection>,
    ] {
        let run = protocol.run(&graph, 2026)?;
        println!("{}", protocol.name());
        println!("  unique leader elected : {}", run.succeeded());
        println!("  leader node           : {:?}", run.outcome.leaders());
        println!("  total messages        : {}", run.cost.total_messages());
        println!(
            "    classical messages  : {}",
            run.cost.metrics.classical_messages
        );
        println!(
            "    quantum messages    : {}",
            run.cost.metrics.quantum_messages
        );
        println!("  effective rounds      : {}\n", run.cost.effective_rounds);
    }
    println!("The quantum protocol trades rounds for messages: its message count grows");
    println!("as Õ(n^(1/3)) against the classical Θ̃(√n) (Corollary 5.3 of the paper).");
    Ok(())
}
