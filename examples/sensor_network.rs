//! A sensor-network scenario: an ad-hoc deployment whose communication graph
//! is a bounded-degree expander (random regular graph). Electing a
//! coordinator with as few radio messages as possible is exactly the
//! low-message leader-election problem the paper motivates for sensor
//! networks; this example runs `QuantumRWLE` (which only needs the network's
//! mixing time) against the classical random-walk protocol and the general
//! tree-merging protocols.
//!
//! Run with: `cargo run --release --example sensor_network`

use classical_baselines::{GhsLe, KppMixingLe};
use congest_net::topology;
use congest_net::walks::spectral_mixing_time;
use qle::algorithms::{QuantumGeneralLe, QuantumRwLe};
use qle::{AlphaChoice, KChoice, LeaderElection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 256 sensors, each with 6 radio links, wired up as a random regular
    // graph (an expander with high probability, so the mixing time is tiny).
    let sensors = 256;
    let graph = topology::random_regular(sensors, 6, 7)?;
    let tau = spectral_mixing_time(&graph, 0.25);
    println!("Sensor network: {sensors} sensors, degree 6, estimated mixing time τ = {tau}\n");

    let protocols: Vec<Box<dyn LeaderElection>> = vec![
        Box::new(QuantumRwLe::with_parameters(
            KChoice::Optimal,
            AlphaChoice::Fixed(0.25),
            Some(tau),
        )),
        Box::new(KppMixingLe::with_tau(tau)),
        Box::new(QuantumGeneralLe::with_alpha(AlphaChoice::Fixed(0.25))),
        Box::new(GhsLe::new()),
    ];
    println!(
        "{:<34} {:>10} {:>10} {:>8}",
        "protocol", "messages", "rounds", "valid"
    );
    for protocol in protocols {
        let run = protocol.run(&graph, 99)?;
        println!(
            "{:<34} {:>10} {:>10} {:>8}",
            protocol.name(),
            run.cost.total_messages(),
            run.cost.effective_rounds,
            run.succeeded(),
        );
    }
    println!("\nOn expanders the quantum random-walk protocol needs Õ(n^(1/3)) messages");
    println!("(Corollary 5.5), while any classical algorithm needs Ω̃(√n).");
    Ok(())
}
